"""Frequency-moment estimation: L1, L2/F2, and fractional ``F_p``.

L1 is re-derived through Algorithm 2 with ``g(x)=|x|`` as an internal
consistency check (the true value is the packet count the sketch already
knows); F2 comes straight from the level-0 Count Sketch; fractional
moments go through :func:`~repro.core.gsum.estimate_moment`.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

from repro.errors import ConfigurationError
from repro.controlplane.apps.base import MonitoringApp
from repro.core.gsum import estimate_f2, estimate_l1, estimate_moment


class MomentsApp(MonitoringApp):
    """Report frequency moments of the monitored key distribution."""

    name = "moments"

    def __init__(self, fractional_ps: Sequence[float] = ()) -> None:
        for p in fractional_ps:
            if not 0.0 <= p <= 2.0:
                raise ConfigurationError(
                    f"moments outside [0, 2] are not Stream-PolyLog: {p}")
        self.fractional_ps = tuple(fractional_ps)

    def on_sketch(self, sketch, epoch_index: int) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "l1": estimate_l1(sketch),
            "f2": estimate_f2(sketch),
            "true_l1": float(sketch.total_weight),
        }
        for p in self.fractional_ps:
            out[f"f{p:g}"] = estimate_moment(sketch, p)
        return out
