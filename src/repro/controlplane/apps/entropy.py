"""Entropy estimation (§3.4 "Entropy Estimation").

``H = log(m) - S/m`` with ``S = sum f_i log f_i`` estimated through
Algorithm 2 with ``g(x) = x log x`` (bounded by ``x**2``, hence in
Stream-PolyLog).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.controlplane.apps.base import MonitoringApp
from repro.core.gsum import estimate_entropy


class EntropyApp(MonitoringApp):
    """Report the Shannon entropy of the monitored key distribution."""

    name = "entropy"

    def __init__(self, base: float = 2.0) -> None:
        self.base = base

    def on_sketch(self, sketch, epoch_index: int) -> Dict[str, Any]:
        return {
            "entropy": estimate_entropy(sketch, base=self.base),
            "base": self.base,
            "packets": sketch.total_weight,
        }
