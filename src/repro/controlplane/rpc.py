"""The poll protocol: controller <-> switch agent over TCP.

Figure 2's dashed line, made concrete: a :class:`SwitchAgent` wraps a
:class:`~repro.dataplane.switch.MonitoredSwitch` and serves its sealed
sketches over a socket; a :class:`RemoteSwitchClient` on the controller
side polls them.  Sketches travel in the binary format of
:mod:`repro.core.serialization`, so the controller reconstructs a fully
queryable :class:`~repro.core.universal.UniversalSketch` and runs the
usual estimation apps on it.

Protocol (all integers little-endian):

    request :  u32 length | utf-8 command line
    response:  u8 status (0 ok / 1 error) | u32 length | payload

Commands:

- ``POLL <program>``  -> payload = serialized sealed sketch
- ``MEMORY``          -> payload = ascii decimal total data-plane bytes
- ``STATS``           -> payload = ascii ``packets=<n> programs=<k>``
- ``PING``            -> payload = ``pong``

The server is intentionally synchronous and single-threaded per
connection (a ThreadingTCPServer underneath): a switch has one
controller, and the 5-second cadence leaves it idle almost always.

Concurrency contract: POLL/MEMORY/STATS hold the agent's lock, so a
poll atomically swaps the program's sketch.  The data-plane feed
(``switch.process_trace`` from the owning thread) does not take the
lock — under CPython's GIL the sketch-reference read is atomic, and the
worst interleaving lands one in-flight chunk in the epoch on either
side of the poll, which is exactly the boundary fuzziness a real
switch's asynchronous counter read has.
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading
from typing import Optional, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.core import serialization
from repro.dataplane.switch import MonitoredSwitch


class RpcError(ReproError):
    """The peer reported a protocol-level failure."""


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(struct.pack("<I", len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise RpcError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> bytes:
    (length,) = struct.unpack("<I", _recv_exact(sock, 4))
    return _recv_exact(sock, length)


class _AgentHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        while True:
            try:
                command = _recv_frame(self.request).decode("utf-8")
            except RpcError:
                return  # client went away between requests
            status, payload = self.server.agent._dispatch(command)
            self.request.sendall(struct.pack("<B", status))
            _send_frame(self.request, payload)


class _AgentServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class SwitchAgent:
    """Serves a monitored switch's sketches to a remote controller."""

    def __init__(self, switch: MonitoredSwitch, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.switch = switch
        self._lock = threading.Lock()
        self._server = _AgentServer((host, port), _AgentHandler)
        self._server.agent = self
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address

    def start(self) -> "SwitchAgent":
        """Start serving in a background thread (chainable)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="switch-agent",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "SwitchAgent":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # request dispatch (runs on server threads)
    # ------------------------------------------------------------------ #

    def _dispatch(self, command: str) -> Tuple[int, bytes]:
        try:
            parts = command.split()
            if not parts:
                raise RpcError("empty command")
            verb = parts[0].upper()
            if verb == "PING":
                return 0, b"pong"
            if verb == "MEMORY":
                with self._lock:
                    return 0, str(self.switch.memory_bytes()).encode()
            if verb == "STATS":
                with self._lock:
                    text = (f"packets={self.switch.packets_seen} "
                            f"programs={len(self.switch.programs())}")
                return 0, text.encode()
            if verb == "POLL":
                if len(parts) != 2:
                    raise RpcError("usage: POLL <program>")
                with self._lock:
                    sealed = self.switch.poll(parts[1])
                return 0, serialization.dumps(sealed)
            raise RpcError(f"unknown command {verb!r}")
        except ReproError as exc:
            return 1, str(exc).encode()
        except Exception as exc:  # defensive: never kill the server loop
            return 1, f"internal error: {exc}".encode()


class RemoteSwitchClient:
    """Controller-side client for one switch agent."""

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        if port <= 0:
            raise ConfigurationError(f"invalid port {port}")
        self._sock = socket.create_connection((host, port), timeout=timeout)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "RemoteSwitchClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _call(self, command: str) -> bytes:
        _send_frame(self._sock, command.encode("utf-8"))
        (status,) = struct.unpack("<B", _recv_exact(self._sock, 1))
        payload = _recv_frame(self._sock)
        if status != 0:
            raise RpcError(payload.decode("utf-8", "replace"))
        return payload

    def ping(self) -> bool:
        return self._call("PING") == b"pong"

    def memory_bytes(self) -> int:
        return int(self._call("MEMORY"))

    def stats(self) -> dict:
        pairs = dict(item.split("=") for item in
                     self._call("STATS").decode().split())
        return {k: int(v) for k, v in pairs.items()}

    def poll(self, program: str):
        """Poll-and-reset one program; returns the reconstructed sketch."""
        return serialization.loads(self._call(f"POLL {program}"))
