"""The poll protocol: controller <-> switch agent over TCP.

Figure 2's dashed line, made concrete: a :class:`SwitchAgent` wraps a
:class:`~repro.dataplane.switch.MonitoredSwitch` and serves its sealed
sketches over a socket; a :class:`RemoteSwitchClient` on the controller
side polls them.  Sketches travel in the binary format of
:mod:`repro.core.serialization`, so the controller reconstructs a fully
queryable :class:`~repro.core.universal.UniversalSketch` and runs the
usual estimation apps on it.

Protocol **v2** (all integers little-endian):

    frame   :  u8 version (=2) | u32 length | u32 crc32(payload) | payload
    request :  frame carrying the utf-8 command line
    response:  frame carrying u8 status | body

Status 0 is success, 1 is an application error (the body is the
message; never retried), and 2 is a *transport-integrity* error — the
server could not trust the request stream (bad version, oversized
length, checksum mismatch) and is about to close the connection, so the
client retries on a fresh one.  The status byte lives inside the frame
so it is covered by the checksum too.

Every frame is hardened against a lossy or hostile transport: the
version byte rejects v1 peers with a clear error instead of a silent
misparse, the length is bounded by :data:`MAX_FRAME_BYTES` before any
allocation, and the CRC32 checksum catches payload corruption on both
sides.  Integrity failures raise :class:`~repro.errors.FrameError`
(a :class:`~repro.errors.TransportError`), because after one the byte
stream can no longer be trusted and the connection must be rebuilt.

Commands:

- ``POLL <program>``  -> payload = serialized sealed sketch
- ``DELTA <program> <base_epoch>`` -> payload = one
  :mod:`repro.network.codec` frame of the sealed sketch: a sparse delta
  when ``base_epoch`` matches the epoch the agent last framed for this
  program (the receiver's *ack*), a compressed full frame otherwise
- ``MEMORY``          -> payload = ascii decimal total data-plane bytes
- ``STATS``           -> payload = ascii ``packets=<n> programs=<k>``
- ``PING``            -> payload = ``pong``

The server is intentionally synchronous and single-threaded per
connection (a ThreadingTCPServer underneath): a switch has one
controller, and the 5-second cadence leaves it idle almost always.

Fault tolerance: :class:`RemoteSwitchClient` connects lazily and
reconnects automatically; every call retries transport failures under a
:class:`RetryPolicy` (exponential backoff, deterministic seeded jitter).
Server-reported errors (status 1) are *not* retried — the exchange
succeeded, the answer was an error.  Note the one semantic wrinkle:
``POLL`` swaps the epoch sketch before the response travels, so a retry
after a *response* loss returns the next (near-empty) epoch; the
coverage counters of :class:`~repro.network.remote.RemoteCoordinator`
make that loss visible instead of silent.

Concurrency contract: POLL/MEMORY/STATS hold the agent's lock, so a
poll atomically swaps the program's sketch.  The data-plane feed
(``switch.process_trace`` from the owning thread) does not take the
lock — under CPython's GIL the sketch-reference read is atomic, and the
worst interleaving lands one in-flight chunk in the epoch on either
side of the poll, which is exactly the boundary fuzziness a real
switch's asynchronous counter read has.
"""

from __future__ import annotations

import random
import socket
import socketserver
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import (
    ConfigurationError,
    FrameError,
    ReproError,
    RpcError,
    TransportError,
)
from repro.core import serialization
from repro.dataplane.switch import MonitoredSwitch

__all__ = [
    "FRAME_VERSION", "MAX_FRAME_BYTES", "RetryPolicy", "RpcError",
    "TransportError", "FrameError", "SwitchAgent", "RemoteSwitchClient",
]

#: Wire format revision; v1 frames (bare length prefix) are rejected.
FRAME_VERSION = 2

#: Hard ceiling on a frame payload.  A corrupt length prefix must never
#: translate into a multi-gigabyte allocation; the largest sketch the
#: experiments ship is a few megabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct("<BII")

#: Response status codes (first byte of every response frame).
STATUS_OK = 0
STATUS_ERROR = 1
STATUS_BAD_FRAME = 2


# --------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------- #

def _send_frame(sock: socket.socket, payload: bytes) -> None:
    header = _HEADER.pack(FRAME_VERSION, len(payload),
                          zlib.crc32(payload) & 0xFFFFFFFF)
    try:
        sock.sendall(header + payload)
    except OSError as exc:
        raise TransportError(f"send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError as exc:
            raise TransportError(f"recv failed: {exc}") from exc
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket,
                max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    # Validate the version byte before waiting for the rest of the
    # header: a v1 peer's frame may be shorter than a v2 header, and
    # blocking on bytes that will never come turns a clean rejection
    # into a timeout.
    (version,) = _recv_exact(sock, 1)
    if version != FRAME_VERSION:
        raise FrameError(
            f"unsupported frame version {version} (this peer speaks "
            f"v{FRAME_VERSION}; v1 frames have no version byte)")
    length, crc = struct.unpack("<II", _recv_exact(sock, 8))
    if length > max_bytes:
        raise FrameError(
            f"frame length {length} exceeds the {max_bytes}-byte limit")
    payload = _recv_exact(sock, length)
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise FrameError("frame checksum mismatch (corrupt payload)")
    return payload


# --------------------------------------------------------------------- #
# retry policy
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    ``max_attempts`` counts the first try: 1 means fail-fast.  The delay
    before retry ``i`` (1-based) is ``base_delay * multiplier**(i-1)``
    capped at ``max_delay``, then scaled by a jitter factor drawn
    uniformly from ``[1 - jitter, 1 + jitter]`` using a
    ``random.Random(seed)`` private to each client — so a fixed seed
    yields a reproducible delay sequence (no wall-clock flakiness in
    tests, no synchronized retry stampedes in deployments).
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, retry_index: int, rng: random.Random) -> float:
        """Delay before the ``retry_index``-th retry (0-based)."""
        delay = min(self.base_delay * self.multiplier ** retry_index,
                    self.max_delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(delay, 0.0)

    def fail_fast(self) -> "RetryPolicy":
        """This policy reduced to a single attempt (health probes)."""
        return RetryPolicy(max_attempts=1, base_delay=self.base_delay,
                           multiplier=self.multiplier,
                           max_delay=self.max_delay, jitter=self.jitter,
                           seed=self.seed)


# --------------------------------------------------------------------- #
# server side
# --------------------------------------------------------------------- #

class _AgentHandler(socketserver.BaseRequestHandler):
    def setup(self) -> None:
        self.server.agent._track(self.request, add=True)

    def finish(self) -> None:
        self.server.agent._track(self.request, add=False)

    def handle(self) -> None:
        while True:
            try:
                raw = _recv_frame(self.request)
            except FrameError as exc:
                # Protocol violation: report it, then drop the stream —
                # after a bad frame, resynchronisation is impossible.
                self._reply(STATUS_BAD_FRAME, str(exc).encode())
                return
            except TransportError:
                return  # client went away between requests
            try:
                command = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                self._reply(STATUS_BAD_FRAME,
                            f"undecodable command: {exc}".encode())
                return
            status, payload = self.server.agent._dispatch(command)
            if not self._reply(status, payload):
                return

    def _reply(self, status: int, payload: bytes) -> bool:
        try:
            _send_frame(self.request, struct.pack("<B", status) + payload)
            return True
        except (TransportError, OSError):
            return False


class _AgentServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class SwitchAgent:
    """Serves a monitored switch's sketches to a remote controller."""

    def __init__(self, switch: MonitoredSwitch, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.switch = switch
        self._encoders: Dict[str, object] = {}  # program -> DeltaEncoder
        self._lock = threading.Lock()
        self._conn_lock = threading.Lock()
        self._connections: set = set()
        self._server = _AgentServer((host, port), _AgentHandler)
        self._server.agent = self
        self._thread: Optional[threading.Thread] = None

    def _track(self, conn: socket.socket, add: bool) -> None:
        with self._conn_lock:
            if add:
                self._connections.add(conn)
            else:
                self._connections.discard(conn)

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address

    def start(self) -> "SwitchAgent":
        """Start serving in a background thread (chainable)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="switch-agent",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and sever every live connection.

        Closing established connections matters for crash simulation and
        clean restarts: handler threads are daemonic, so without this a
        "stopped" agent would keep answering peers that connected before
        the shutdown.
        """
        self._server.shutdown()
        self._server.server_close()
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "SwitchAgent":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # request dispatch (runs on server threads)
    # ------------------------------------------------------------------ #

    def _dispatch(self, command: str) -> Tuple[int, bytes]:
        try:
            parts = command.split()
            if not parts:
                raise RpcError("empty command")
            verb = parts[0].upper()
            if verb == "PING":
                return STATUS_OK, b"pong"
            if verb == "MEMORY":
                with self._lock:
                    return STATUS_OK, str(self.switch.memory_bytes()).encode()
            if verb == "STATS":
                with self._lock:
                    text = (f"packets={self.switch.packets_seen} "
                            f"programs={len(self.switch.programs())}")
                return STATUS_OK, text.encode()
            if verb == "POLL":
                if len(parts) != 2:
                    raise RpcError("usage: POLL <program>")
                with self._lock:
                    sealed = self.switch.poll(parts[1])
                return STATUS_OK, serialization.dumps(sealed)
            if verb == "DELTA":
                if len(parts) != 3:
                    raise RpcError("usage: DELTA <program> <base_epoch>")
                try:
                    base_epoch = int(parts[2])
                except ValueError:
                    raise RpcError(
                        f"base_epoch must be an integer, got "
                        f"{parts[2]!r}") from None
                # Imported lazily: repro.network pulls this module back
                # in through its coordinator re-exports.
                from repro.network.codec import DeltaEncoder
                with self._lock:
                    encoder = self._encoders.get(parts[1])
                    if encoder is None:
                        encoder = self._encoders[parts[1]] = DeltaEncoder()
                    sealed = self.switch.poll(parts[1])
                    return STATUS_OK, encoder.encode(
                        sealed, base_epoch=base_epoch)
            raise RpcError(f"unknown command {verb!r}")
        except ReproError as exc:
            return STATUS_ERROR, str(exc).encode()
        except Exception as exc:  # defensive: never kill the server loop
            return STATUS_ERROR, f"internal error: {exc}".encode()


# --------------------------------------------------------------------- #
# client side
# --------------------------------------------------------------------- #

class RemoteSwitchClient:
    """Controller-side client for one switch agent.

    Connects lazily and reconnects automatically: any transport failure
    (refused connect, reset, timeout, short read, corrupt frame) tears
    the socket down and — under ``retry`` — backs off and tries again on
    a fresh connection.  All transport failures surface as
    :class:`~repro.errors.TransportError`; server-reported errors stay
    plain :class:`~repro.errors.RpcError` and are never retried.

    ``sleep`` is injectable so tests (and simulations) can run the
    backoff schedule without wall-clock delays.
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0,
                 retry: Optional[RetryPolicy] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        if port <= 0:
            raise ConfigurationError(f"invalid port {port}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.counters: Dict[str, int] = {
            "calls": 0, "connects": 0, "retries": 0, "failures": 0,
        }
        self._sleep = sleep
        self._rng = random.Random(self.retry.seed)
        self._max_frame_bytes = max_frame_bytes
        self._sock: Optional[socket.socket] = None
        self._decoders: Dict[str, object] = {}  # program -> DeltaDecoder

    # -- connection management ---------------------------------------- #

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def _ensure_connected(self) -> socket.socket:
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
            except OSError as exc:
                raise TransportError(
                    f"connect to {self.host}:{self.port} failed: {exc}"
                ) from exc
            self.counters["connects"] += 1
        return self._sock

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "RemoteSwitchClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request/response ---------------------------------------------- #

    def _call(self, command: str, retry: Optional[RetryPolicy] = None) -> bytes:
        policy = retry if retry is not None else self.retry
        self.counters["calls"] += 1
        last: Optional[TransportError] = None
        for attempt in range(policy.max_attempts):
            if attempt:
                self.counters["retries"] += 1
                self._sleep(policy.backoff(attempt - 1, self._rng))
            try:
                sock = self._ensure_connected()
                _send_frame(sock, command.encode("utf-8"))
                response = _recv_frame(sock, self._max_frame_bytes)
                if not response:
                    raise FrameError("response frame missing status byte")
                status, payload = response[0], response[1:]
                if status == STATUS_BAD_FRAME:
                    # The server could not trust our request stream and
                    # is closing; rebuild the connection and try again.
                    raise FrameError(
                        f"peer rejected frame: "
                        f"{payload.decode('utf-8', 'replace')}")
            except TransportError as exc:
                last = exc
                self._disconnect()
                continue
            if status != STATUS_OK:
                raise RpcError(payload.decode("utf-8", "replace"))
            return payload
        self.counters["failures"] += 1
        verb = command.split()[0] if command.split() else command
        raise TransportError(
            f"{verb} to {self.host}:{self.port} failed after "
            f"{policy.max_attempts} attempt(s): {last}") from last

    # -- commands ------------------------------------------------------- #

    def ping(self, retry: Optional[RetryPolicy] = None) -> bool:
        return self._call("PING", retry=retry) == b"pong"

    def memory_bytes(self) -> int:
        payload = self._call("MEMORY")
        try:
            return int(payload)
        except ValueError:
            raise RpcError(
                f"malformed MEMORY payload {payload!r}") from None

    def stats(self) -> dict:
        raw = self._call("STATS").decode("utf-8", "replace")
        stats: Dict[str, int] = {}
        for item in raw.split():
            key, sep, value = item.partition("=")
            if not sep or not key:
                raise RpcError(f"malformed STATS payload {raw!r}")
            try:
                stats[key] = int(value)
            except ValueError:
                raise RpcError(
                    f"malformed STATS payload {raw!r}: "
                    f"{value!r} is not an integer") from None
        missing = {"packets", "programs"} - stats.keys()
        if missing:
            raise RpcError(
                f"malformed STATS payload {raw!r}: missing "
                f"{sorted(missing)}")
        return stats

    def poll(self, program: str):
        """Poll-and-reset one program; returns the reconstructed sketch."""
        return serialization.loads(self._call(f"POLL {program}"))

    def poll_frame(self, program: str, base_epoch: int) -> bytes:
        """Poll-and-reset one program as a codec frame, acking
        ``base_epoch`` as the epoch this side already holds.  Returns
        the raw frame bytes; decode with a
        :class:`~repro.network.codec.DeltaDecoder`."""
        return self._call(f"DELTA {program} {int(base_epoch)}")

    def poll_delta(self, program: str):
        """Poll-and-reset one program over delta transfer, managing the
        decoder state internally.  A frame this side cannot apply (peer
        restarted mid-lineage, corrupt frame) resets the decoder and
        forces exactly one full-frame re-poll — note that re-poll
        returns the *next* sealed epoch, so the coverage accounting of
        the caller should treat it like any other lost response."""
        from repro.network.codec import NO_BASE, DeltaDecoder
        from repro.errors import CodecError
        decoder = self._decoders.get(program)
        if decoder is None:
            decoder = self._decoders[program] = DeltaDecoder()
        try:
            return decoder.decode(
                self.poll_frame(program, decoder.base_epoch))
        except CodecError:
            decoder.reset()
            return decoder.decode(self.poll_frame(program, NO_BASE))
