"""UnivMon's control plane: the poll loop and the estimation apps.

The data plane collects one generic universal sketch; everything
task-specific happens here, offline, by running *estimation functions*
over the polled counters (Figure 2 of the paper).  Each app in
:mod:`~repro.controlplane.apps` is one such function; the
:class:`~repro.controlplane.controller.Controller` drives the epoch loop
("the controller periodically polls the switch every 5 seconds") and fans
the sealed sketch out to every registered app — the late binding between
data-plane work and measurement task that makes the approach "RISC".
"""

from repro.controlplane.controller import Controller, EpochReport
from repro.controlplane.apps.heavy_hitters import HeavyHitterApp
from repro.controlplane.apps.ddos import DDoSApp
from repro.controlplane.apps.change import ChangeDetectionApp
from repro.controlplane.apps.entropy import EntropyApp
from repro.controlplane.apps.cardinality import CardinalityApp
from repro.controlplane.apps.moments import MomentsApp
from repro.controlplane.hhh import HierarchicalHeavyHitterMonitor, HHHItem
from repro.controlplane.multidim import MultidimensionalMonitor
from repro.controlplane.rpc import RemoteSwitchClient, SwitchAgent

__all__ = [
    "HierarchicalHeavyHitterMonitor",
    "HHHItem",
    "SwitchAgent",
    "RemoteSwitchClient",
    "Controller",
    "EpochReport",
    "HeavyHitterApp",
    "DDoSApp",
    "ChangeDetectionApp",
    "EntropyApp",
    "CardinalityApp",
    "MomentsApp",
    "MultidimensionalMonitor",
]
