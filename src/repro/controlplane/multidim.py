"""Multidimensional monitoring (§5 "Multidimensional data").

The 5-tuple is high-dimensional; operators want metrics over several of
its projections (source, destination, OD pair, full flow) at once.  Short
of a true multidimensional universal sketch (an open problem the paper
poses), the practical construction is one universal sketch per monitored
projection, managed together — which is still one *generic* primitive per
dimension rather than one custom sketch per (dimension x task) pair, so
the RISC economics survive: K dimensions x T tasks costs K sketches, not
K x T.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.dataplane.keys import KEY_FUNCTIONS, KeyFunction
from repro.dataplane.trace import Trace
from repro.core.universal import UniversalSketch


class MultidimensionalMonitor:
    """One universal sketch per monitored 5-tuple projection."""

    def __init__(self, dimensions: Sequence[KeyFunction],
                 sketch_factory: Optional[Callable[[], UniversalSketch]] = None
                 ) -> None:
        if not dimensions:
            raise ConfigurationError("need at least one dimension")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate dimensions: {names}")
        if sketch_factory is None:
            sketch_factory = lambda: UniversalSketch(  # noqa: E731
                levels=12, rows=5, width=2048, heap_size=64, seed=1)
        self.dimensions = list(dimensions)
        self.sketches: Dict[str, UniversalSketch] = {
            d.name: sketch_factory() for d in dimensions
        }

    @classmethod
    def all_dimensions(cls, **kwargs) -> "MultidimensionalMonitor":
        """Monitor every registered key function."""
        return cls(list(KEY_FUNCTIONS.values()), **kwargs)

    def process_trace(self, trace: Trace) -> None:
        for dim in self.dimensions:
            self.sketches[dim.name].update_array(trace.key_array(dim))

    def update_packet(self, packet) -> None:
        for dim in self.dimensions:
            self.sketches[dim.name].update(dim(packet))

    def sketch(self, dimension: str) -> UniversalSketch:
        try:
            return self.sketches[dimension]
        except KeyError:
            raise ConfigurationError(
                f"dimension {dimension!r} is not monitored "
                f"(have {sorted(self.sketches)})") from None

    # Convenience per-dimension queries -------------------------------- #

    def heavy_hitters(self, dimension: str, fraction: float):
        return self.sketch(dimension).heavy_hitters(fraction)

    def cardinality(self, dimension: str) -> float:
        return self.sketch(dimension).cardinality()

    def entropy(self, dimension: str, base: float = 2.0) -> float:
        return self.sketch(dimension).entropy(base=base)

    def memory_bytes(self) -> int:
        return sum(s.memory_bytes() for s in self.sketches.values())
