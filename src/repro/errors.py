"""Exception hierarchy for the repro (UnivMon) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class IncompatibleSketchError(ReproError):
    """Two sketches cannot be combined (merge/subtract) because their
    geometry or seeds differ."""


class NotSketchableError(ReproError):
    """The requested g-function is not in Stream-PolyLog, so no
    polylogarithmic-space universal estimate exists for it."""


class TraceFormatError(ReproError):
    """A trace file could not be parsed."""


class TopologyError(ReproError):
    """A network topology operation failed (unknown node, no path, ...)."""


class ShardFailureError(ReproError):
    """A sharded-ingest worker died, reported an error, or timed out.

    Sharded ingest is exact-or-nothing: a missing shard would silently
    undercount every estimate, so the driver surfaces any dead worker as
    this error instead of merging partial results (or hanging on them)."""


class CodecError(TraceFormatError):
    """A compressed/delta sketch frame failed validation (bad magic,
    checksum mismatch, out-of-range indices, overflowing deltas).  The
    codec rejects such frames outright — it never applies a partially
    validated delta, so a hostile or corrupt frame can make a transfer
    fail but can never corrupt the receiver's sketch state."""


class StaleBaseError(CodecError):
    """A delta frame references a base epoch the receiver does not hold
    (the peer restarted, or frames were lost since the last ack).  The
    receiver cannot apply the delta; the sender must fall back to a
    full frame."""


class RpcError(ReproError):
    """The poll-protocol peer reported a protocol-level failure."""


class TransportError(RpcError):
    """The poll-protocol transport failed (connect refused, reset, timeout,
    short read).  Unlike a plain :class:`RpcError` — which reports a
    *successful* exchange whose answer was an error — a transport failure
    is retriable: the request may never have reached the peer."""


class FrameError(TransportError):
    """A poll-protocol frame failed integrity checks (bad version byte,
    oversized length prefix, checksum mismatch).  After a frame error the
    stream can no longer be trusted, so clients reconnect and retry."""
