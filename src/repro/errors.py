"""Exception hierarchy for the repro (UnivMon) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class IncompatibleSketchError(ReproError):
    """Two sketches cannot be combined (merge/subtract) because their
    geometry or seeds differ."""


class NotSketchableError(ReproError):
    """The requested g-function is not in Stream-PolyLog, so no
    polylogarithmic-space universal estimate exists for it."""


class TraceFormatError(ReproError):
    """A trace file could not be parsed."""


class TopologyError(ReproError):
    """A network topology operation failed (unknown node, no path, ...)."""
