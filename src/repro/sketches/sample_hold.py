"""Sample-and-hold (Estan & Varghese, SIGCOMM 2002).

The "minimalist" heavy hitter baseline the paper's related-work section
cites (Sekar et al. showed it rivals sketches given equal resources): each
packet of an untracked flow is sampled with probability ``p``; once a flow
is tracked, *every* subsequent packet of that flow is counted exactly.

Counts therefore underestimate by the (geometrically distributed) number
of packets before sampling; the standard correction adds ``1/p - 1``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sketches.base import Sketch, UpdateCost


class SampleAndHold(Sketch):
    """Sample-and-hold flow table.

    Parameters
    ----------
    sample_probability:
        Per-packet sampling probability for untracked flows.
    capacity:
        Maximum number of tracked flows (table slots).  When full, new
        flows are not admitted (the hardware behaviour).
    """

    __slots__ = ("sample_probability", "capacity", "seed", "_table", "_rng",
                 "dropped_admissions")

    def __init__(self, sample_probability: float, capacity: int,
                 seed: Optional[int] = None) -> None:
        if not 0.0 < sample_probability <= 1.0:
            raise ConfigurationError(
                f"sample_probability must be in (0, 1], got {sample_probability}")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.sample_probability = sample_probability
        self.capacity = capacity
        self.seed = seed
        self._table: Dict[int, int] = {}
        self._rng = random.Random(seed)
        self.dropped_admissions = 0

    def update(self, key: int, weight: int = 1) -> None:
        table = self._table
        if key in table:
            table[key] += weight
            return
        if self._rng.random() < self.sample_probability:
            if len(table) < self.capacity:
                table[key] = weight
            else:
                self.dropped_admissions += 1

    def query(self, key: int) -> float:
        """Bias-corrected estimate (0 for untracked flows)."""
        count = self._table.get(key)
        if count is None:
            return 0.0
        return count + (1.0 / self.sample_probability) - 1.0

    def tracked_flows(self) -> List[Tuple[int, float]]:
        """All tracked ``(key, corrected_estimate)`` pairs, largest first."""
        corr = (1.0 / self.sample_probability) - 1.0
        return sorted(((k, c + corr) for k, c in self._table.items()),
                      key=lambda kv: -kv[1])

    def heavy_hitters(self, threshold: float) -> List[Tuple[int, float]]:
        """Tracked flows with corrected estimate >= threshold."""
        return [(k, est) for k, est in self.tracked_flows() if est >= threshold]

    def memory_bytes(self) -> int:
        # One (key, counter) slot per capacity entry, as in hardware.
        return self.capacity * 16

    def update_cost(self) -> UpdateCost:
        return UpdateCost(hashes=1, counter_updates=1, memory_words=1)
