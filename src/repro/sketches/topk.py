"""A fixed-capacity top-k tracker keyed by estimate *magnitude*.

Used as the ``Q_j`` heavy hitter set each UnivMon level maintains alongside
its Count Sketch, and by the Count-Min + heap baseline.  Entries are
``key -> estimate``; ranking (and eviction) is by ``abs(estimate)`` so the
same structure works for insert-only streams (estimates ≥ 0) and for
*difference* streams, where an L2 heavy hitter may have a large negative
delta.

Implemented as a dict plus a lazily-pruned min-heap so ``offer`` is
O(log k) amortised even when the same key's estimate keeps changing.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Tuple

from repro.errors import ConfigurationError


class TopK:
    """Track the ``k`` keys with the largest |estimate| seen so far."""

    __slots__ = ("capacity", "_estimates", "_heap")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._estimates: Dict[int, float] = {}
        self._heap: List[Tuple[float, int]] = []  # (|estimate|, key), stale ok

    def __len__(self) -> int:
        return len(self._estimates)

    def __contains__(self, key: int) -> bool:
        return key in self._estimates

    def __iter__(self) -> Iterator[int]:
        return iter(self._estimates)

    def offer(self, key: int, estimate: float) -> bool:
        """Offer ``key`` with a (new) estimate; returns True if retained.

        A key already tracked always stays tracked; its estimate is simply
        replaced (estimates from a Count Sketch point query can move both
        up and down as collisions shift).
        """
        est = self._estimates
        rank = abs(estimate)
        if key in est:
            est[key] = estimate
            heapq.heappush(self._heap, (rank, key))
            return True
        if len(est) < self.capacity:
            est[key] = estimate
            heapq.heappush(self._heap, (rank, key))
            return True
        min_key, min_rank = self.min()
        if rank <= min_rank:
            return False
        del est[min_key]
        est[key] = estimate
        heapq.heappush(self._heap, (rank, key))
        return True

    def min(self) -> Tuple[int, float]:
        """The tracked ``(key, |estimate|)`` with the smallest magnitude."""
        if not self._estimates:
            raise KeyError("TopK is empty")
        est = self._estimates
        heap = self._heap
        while heap:
            rank, key = heap[0]
            current = est.get(key)
            if current is not None and abs(current) == rank:
                return key, rank
            heapq.heappop(heap)  # stale entry
        # All heap entries were stale; rebuild from the dict.
        self._heap = [(abs(v), k) for k, v in est.items()]
        heapq.heapify(self._heap)
        rank, key = self._heap[0]
        return key, rank

    def estimate(self, key: int) -> float:
        """Tracked (signed) estimate for ``key``; KeyError if not tracked."""
        return self._estimates[key]

    def items(self) -> List[Tuple[int, float]]:
        """All tracked ``(key, estimate)`` pairs, largest |estimate| first."""
        return sorted(self._estimates.items(), key=lambda kv: -abs(kv[1]))

    def keys(self) -> List[int]:
        return list(self._estimates)

    def memory_bytes(self) -> int:
        """Data-plane cost: one 8-byte key + one 8-byte counter per slot."""
        return self.capacity * 16
