"""A fixed-capacity top-k tracker keyed by estimate *magnitude*.

Used as the ``Q_j`` heavy hitter set each UnivMon level maintains alongside
its Count Sketch, and by the Count-Min + heap baseline.  Entries are
``key -> estimate``; ranking (and eviction) is by ``abs(estimate)`` so the
same structure works for insert-only streams (estimates ≥ 0) and for
*difference* streams, where an L2 heavy hitter may have a large negative
delta.

Implemented as a dict plus a lazily-pruned min-heap so ``offer`` is
O(log k) amortised even when the same key's estimate keeps changing.

Churn accounting: every instance counts ``offers`` (candidates seen),
``evictions`` (tracked keys displaced) and ``rejections`` (candidates
that never made it in) as plain integers — cheap enough for the hot
path, and exported per level by ``repro.obs.observe_sketch`` when a
sealed sketch reaches the control plane.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import ConfigurationError


class TopK:
    """Track the ``k`` keys with the largest |estimate| seen so far."""

    __slots__ = ("capacity", "_estimates", "_heap", "offers", "evictions",
                 "rejections")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._estimates: Dict[int, float] = {}
        self._heap: List[Tuple[float, int]] = []  # (|estimate|, key), stale ok
        self.offers = 0      # candidates seen (tracked keys re-offered too)
        self.evictions = 0   # tracked keys displaced by a larger candidate
        self.rejections = 0  # candidates that never displaced anything

    def __len__(self) -> int:
        return len(self._estimates)

    def __contains__(self, key: int) -> bool:
        return key in self._estimates

    def __iter__(self) -> Iterator[int]:
        return iter(self._estimates)

    def offer(self, key: int, estimate: float) -> bool:
        """Offer ``key`` with a (new) estimate; returns True if retained.

        A key already tracked always stays tracked; its estimate is simply
        replaced (estimates from a Count Sketch point query can move both
        up and down as collisions shift).
        """
        est = self._estimates
        rank = abs(estimate)
        self.offers += 1
        if key in est:
            est[key] = estimate
            heapq.heappush(self._heap, (rank, key))
            return True
        if len(est) < self.capacity:
            est[key] = estimate
            heapq.heappush(self._heap, (rank, key))
            return True
        min_key, min_rank = self.min()
        if rank <= min_rank:
            self.rejections += 1
            return False
        del est[min_key]
        self.evictions += 1
        est[key] = estimate
        heapq.heappush(self._heap, (rank, key))
        return True

    def offer_many(self, keys: np.ndarray, estimates: np.ndarray,
                   sorted_keys: bool = False) -> None:
        """Bulk offer of *distinct* keys with fresh estimates.

        Equivalent to calling :meth:`offer` for every pair in increasing
        ``|estimate|`` order — tracked keys get their estimate replaced,
        the rest compete by magnitude — but selects the survivors with
        one ``argpartition`` instead of one heap touch per key, so the
        Python-level work is O(capacity), not O(len(keys)).  Ties at the
        eviction boundary may resolve differently from the sequential
        order; both resolutions are valid top-k sets.  Pass
        ``sorted_keys=True`` when ``keys`` is ascending (e.g. straight
        from ``np.unique``) to replace the membership scan with binary
        search.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        estimates = np.asarray(estimates, dtype=np.float64)
        if len(keys) == 0:
            return
        self.offers += len(keys)
        prev_keys: List[int] = []
        est = self._estimates
        if est:
            old_keys = np.fromiter(est.keys(), dtype=np.uint64,
                                   count=len(est))
            prev_keys = old_keys.tolist()
            if sorted_keys:
                pos = np.searchsorted(keys, old_keys)
                pos[pos == len(keys)] = 0
                kept = old_keys[keys[pos] != old_keys]
            else:
                kept = old_keys[~np.isin(old_keys, keys)]
            if len(kept):
                old_ests = np.array([est[int(k)] for k in kept],
                                    dtype=np.float64)
                keys = np.concatenate([keys, kept])
                estimates = np.concatenate([estimates, old_ests])
        candidates = len(keys)
        ranks = np.abs(estimates)
        if len(keys) > self.capacity:
            cut = len(keys) - self.capacity
            top = np.argpartition(ranks, cut)[cut:]
            keys, estimates, ranks = keys[top], estimates[top], ranks[top]
        order = np.argsort(ranks, kind="stable")
        self._estimates = {
            int(keys[i]): float(estimates[i]) for i in order
        }
        # Ascending (rank, key) list is already a valid min-heap.
        self._heap = [(float(ranks[i]), int(keys[i])) for i in order]
        dropped = candidates - len(self._estimates)
        if dropped:
            # Same taxonomy as the scalar path: a previously tracked key
            # that did not survive is an eviction; a fresh candidate that
            # never made it in is a rejection.
            evicted = sum(1 for k in prev_keys if k not in self._estimates)
            self.evictions += evicted
            self.rejections += dropped - evicted

    def min(self) -> Tuple[int, float]:
        """The tracked ``(key, |estimate|)`` with the smallest magnitude."""
        if not self._estimates:
            raise KeyError("TopK is empty")
        est = self._estimates
        heap = self._heap
        while heap:
            rank, key = heap[0]
            current = est.get(key)
            if current is not None and abs(current) == rank:
                return key, rank
            heapq.heappop(heap)  # stale entry
        # All heap entries were stale; rebuild from the dict.
        self._heap = [(abs(v), k) for k, v in est.items()]
        heapq.heapify(self._heap)
        rank, key = self._heap[0]
        return key, rank

    def copy(self) -> "TopK":
        """An independent snapshot (mutating either side is safe)."""
        out = TopK.__new__(TopK)
        out.capacity = self.capacity
        out._estimates = dict(self._estimates)
        out._heap = list(self._heap)
        out.offers = self.offers
        out.evictions = self.evictions
        out.rejections = self.rejections
        return out

    def estimate(self, key: int) -> float:
        """Tracked (signed) estimate for ``key``; KeyError if not tracked."""
        return self._estimates[key]

    def items(self) -> List[Tuple[int, float]]:
        """All tracked ``(key, estimate)`` pairs, largest |estimate| first."""
        return sorted(self._estimates.items(), key=lambda kv: -abs(kv[1]))

    def keys(self) -> List[int]:
        return list(self._estimates)

    def memory_bytes(self) -> int:
        """Data-plane cost: one 8-byte key + one 8-byte counter per slot."""
        return self.capacity * 16
