"""Exact per-key counting — the ground truth every experiment compares to.

Not a sketch in the space-bounded sense (it is the thing sketches avoid),
but it implements the same interface so harness code can treat it
uniformly, and it centralises the exact formulas for every statistic the
paper evaluates: heavy hitters, distinct counts, entropy, frequency
moments, G-sums, and heavy change between two epochs.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Dict, Iterable, List, Tuple

from repro.sketches.base import Sketch, UpdateCost


class ExactCounter(Sketch):
    """Exact frequency table over integer keys."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Counter = Counter()

    def update(self, key: int, weight: int = 1) -> None:
        self.counts[key] += weight

    def update_array(self, keys, weights=None) -> None:
        if weights is None:
            self.counts.update(int(k) for k in keys)
        else:
            for k, w in zip(keys, weights):
                self.counts[int(k)] += int(w)

    # ------------------------------------------------------------------ #
    # exact statistics
    # ------------------------------------------------------------------ #

    def total(self) -> int:
        """Total weight ``m``."""
        return sum(self.counts.values())

    def cardinality(self) -> int:
        """Number of distinct keys ``n`` (i.e. ``F0``)."""
        return len(self.counts)

    def frequency(self, key: int) -> int:
        return self.counts.get(key, 0)

    def heavy_hitters(self, fraction: float) -> List[Tuple[int, int]]:
        """Keys whose weight is >= ``fraction`` of the total, largest first."""
        threshold = fraction * self.total()
        return sorted(((k, c) for k, c in self.counts.items()
                       if c >= threshold), key=lambda kv: -kv[1])

    def entropy(self, base: float = 2.0) -> float:
        """Empirical Shannon entropy ``-sum (f/m) log(f/m)``."""
        m = self.total()
        if m == 0:
            return 0.0
        log_base = math.log(base)
        return -sum((c / m) * (math.log(c / m) / log_base)
                    for c in self.counts.values() if c > 0)

    def moment(self, p: float) -> float:
        """Frequency moment ``F_p = sum f_i**p`` (``F0`` = cardinality)."""
        if p == 0:
            return float(self.cardinality())
        return float(sum(c ** p for c in self.counts.values()))

    def g_sum(self, g: Callable[[float], float]) -> float:
        """Exact ``G-sum = sum_i g(f_i)`` for any g."""
        return float(sum(g(c) for c in self.counts.values()))

    def top(self, k: int) -> List[Tuple[int, int]]:
        return self.counts.most_common(k)

    # ------------------------------------------------------------------ #
    # two-epoch statistics (change detection ground truth)
    # ------------------------------------------------------------------ #

    def difference(self, other: "ExactCounter") -> Dict[int, int]:
        """Signed per-key difference ``f_self(x) - f_other(x)``."""
        keys = set(self.counts) | set(other.counts)
        return {k: self.counts.get(k, 0) - other.counts.get(k, 0)
                for k in keys}

    def heavy_changes(self, other: "ExactCounter",
                      phi: float) -> List[Tuple[int, int]]:
        """Keys whose |difference| >= ``phi`` * total absolute change."""
        diff = self.difference(other)
        total = sum(abs(d) for d in diff.values())
        if total == 0:
            return []
        threshold = phi * total
        return sorted(((k, d) for k, d in diff.items()
                       if abs(d) >= threshold), key=lambda kv: -abs(kv[1]))

    def total_change(self, other: "ExactCounter") -> int:
        """Total L1 change ``D = sum_x |f_A(x) - f_B(x)|``."""
        return sum(abs(d) for d in self.difference(other).values())

    # ------------------------------------------------------------------ #
    # Sketch interface
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        # 8-byte key + 8-byte count per entry; grows with the stream,
        # which is exactly why this is the baseline sketches beat.
        return len(self.counts) * 16

    def update_cost(self) -> UpdateCost:
        return UpdateCost(hashes=1, counter_updates=1, memory_words=1)

    @classmethod
    def from_keys(cls, keys: Iterable[int]) -> "ExactCounter":
        out = cls()
        for k in keys:
            out.update(int(k))
        return out
