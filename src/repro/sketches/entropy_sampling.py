"""Sampling-based entropy estimator (Lall et al., SIGMETRICS 2006).

The custom-algorithm baseline for the entropy experiment (Figure 7;
OpenSketch has no entropy primitive, so the paper reports UnivMon alone —
we additionally implement the canonical streaming competitor so the bench
has a baseline curve).

The estimator targets ``S = sum_i f_i log f_i``: sample ``z`` positions of
the length-``m`` stream uniformly; for a sample landing on position ``j``
with key ``a_j``, let ``c`` be the number of occurrences of ``a_j`` in
positions ``j..m``.  Then ``X = c*log(c) - (c-1)*log(c-1)`` (with
``0 log 0 = 0``) satisfies ``E[X] = S / m``, so ``m * mean(X)`` estimates
``S`` and the entropy follows as ``H = log m - S/m``.

The stream length must be known up front to draw positions uniformly; in
the UnivMon setting the controller polls fixed epochs, so ``m`` is the
epoch's packet count (the original paper gives an m-unknown variant via
reservoir sampling; the fixed-epoch form is what the evaluation needs).
"""

from __future__ import annotations

import math
import random
from collections import defaultdict
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sketches.base import Sketch, UpdateCost


def _x_estimate(c: int, log_base: float) -> float:
    """The per-sample estimator ``c log c - (c-1) log (c-1)``."""
    if c <= 0:
        return 0.0
    term1 = c * math.log(c) / log_base
    term2 = (c - 1) * math.log(c - 1) / log_base if c > 1 else 0.0
    return term1 - term2


class SampledEntropyEstimator(Sketch):
    """Lall et al. entropy estimator over a fixed-length epoch.

    Parameters
    ----------
    stream_length:
        Number of packets in the epoch (``m``).
    num_samples:
        Number of sampled positions (``z``); memory is O(z).
    base:
        Logarithm base for the entropy (2 for bits, e for nats).
    """

    __slots__ = ("stream_length", "num_samples", "base", "seed", "_log_base",
                 "_position", "_sample_starts", "_active", "_counts")

    def __init__(self, stream_length: int, num_samples: int,
                 base: float = 2.0, seed: Optional[int] = None) -> None:
        if stream_length < 1:
            raise ConfigurationError(
                f"stream_length must be >= 1, got {stream_length}")
        if num_samples < 1:
            raise ConfigurationError(
                f"num_samples must be >= 1, got {num_samples}")
        self.stream_length = stream_length
        self.num_samples = num_samples
        self.base = base
        self.seed = seed
        self._log_base = math.log(base)
        rng = random.Random(seed)
        # How many trackers start at each position (sampling w/ replacement).
        starts: Dict[int, int] = defaultdict(int)
        for _ in range(num_samples):
            starts[rng.randrange(stream_length)] += 1
        self._sample_starts = dict(starts)
        self._position = 0
        # key -> list of per-tracker counts for trackers following that key
        self._active: Dict[int, List[int]] = {}
        self._counts: List[int] = []  # finalized tracker counts (flat)

    def update(self, key: int, weight: int = 1) -> None:
        if self._position >= self.stream_length:
            raise ConfigurationError(
                "stream longer than the declared stream_length")
        trackers = self._active.get(key)
        if trackers is not None:
            for i in range(len(trackers)):
                trackers[i] += 1
        new = self._sample_starts.get(self._position, 0)
        if new:
            self._active.setdefault(key, [])
            self._active[key].extend([1] * new)
        self._position += 1

    def _all_counts(self) -> List[int]:
        counts = list(self._counts)
        for trackers in self._active.values():
            counts.extend(trackers)
        return counts

    def s_estimate(self) -> float:
        """Estimate of ``S = sum f_i log f_i`` (in the configured base)."""
        counts = self._all_counts()
        if not counts:
            return 0.0
        mean_x = sum(_x_estimate(c, self._log_base) for c in counts) / len(counts)
        return self._position * mean_x

    def entropy_estimate(self) -> float:
        """Estimate of ``H = log m - S / m`` (empirical Shannon entropy)."""
        m = self._position
        if m == 0:
            return 0.0
        return math.log(m) / self._log_base - self.s_estimate() / m

    def memory_bytes(self) -> int:
        # One (key, counter) pair per sample tracker.
        return self.num_samples * 16

    def update_cost(self) -> UpdateCost:
        return UpdateCost(hashes=1, counter_updates=1, memory_words=1)
