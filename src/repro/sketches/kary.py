"""k-ary sketch for change detection (Krishnamurthy et al., IMC 2003).

The custom baseline UnivMon is compared against in Figure 6.  A k-ary
sketch is a ``rows x width`` counter array (same geometry as Count-Min but
queried differently): the per-row *unbiased* point estimate removes the
expected collision mass,

    est_r(x) = (T[r, h_r(x)] - S / width) / (1 - 1/width),

with ``S`` the total stream weight, and the final estimate is the median
over rows.  Change detection sketches two adjacent intervals with the same
seeds, takes the counter-wise difference, and reports keys whose estimated
|difference| exceeds ``phi`` times the total change.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.hashing.tabulation import (
    TabulationHash,
    gather_packed,
    tabulation_family,
)
from repro.sketches.countmin import _bincount_rows, _packed_bucket_state
from repro.sketches.base import Sketch, UpdateCost


class KArySketch(Sketch):
    """A ``rows x width`` k-ary sketch over integer keys."""

    __slots__ = ("rows", "width", "seed", "counter_bytes", "table", "_hashes",
                 "_packed")

    def __init__(self, rows: int, width: int, seed: Optional[int] = None,
                 counter_bytes: int = 4) -> None:
        if rows < 1 or width < 2:
            raise ConfigurationError(
                f"need rows >= 1 and width >= 2, got {rows}, {width}")
        self.rows = rows
        self.width = width
        self.seed = seed
        self.counter_bytes = counter_bytes
        self.table = np.zeros((rows, width), dtype=np.int64)
        self._hashes: List[TabulationHash] = \
            list(tabulation_family(seed, rows))
        self._packed = None

    def update(self, key: int, weight: int = 1) -> None:
        for r, h in enumerate(self._hashes):
            self.table[r, h(key) % self.width] += weight

    def update_array(self, keys: np.ndarray,
                     weights: Optional[np.ndarray] = None) -> None:
        """Bulk update: one fused XOR-gather + per-row ``bincount`` (see
        ``CountSketch.update_array``), with a 2-D hash fallback."""
        if len(keys) == 0:
            return
        if weights is not None:
            weights = np.asarray(weights).astype(np.int64, copy=False)
        if self._packed is None:
            self._packed = _packed_bucket_state(self._hashes, self.rows,
                                                self.width)
        packed, field_bits = self._packed
        if packed is not None:
            _bincount_rows(self.table, gather_packed(packed, keys),
                           field_bits, weights)
            return
        v = TabulationHash.hash_matrix(self._hashes, keys)      # (rows, n)
        buckets = (v % np.uint64(self.width)).astype(np.int64)
        slots = buckets + (np.arange(self.rows, dtype=np.int64)[:, None]
                           * self.width)
        if weights is None:
            counts = np.bincount(slots.ravel(),
                                 minlength=self.rows * self.width)
        else:
            tiled = np.broadcast_to(weights, (self.rows, len(keys)))
            counts = np.bincount(slots.ravel(), weights=tiled.ravel(),
                                 minlength=self.rows * self.width)
        self.table += counts.astype(np.int64).reshape(self.rows, self.width)

    def total(self) -> int:
        """Total stream weight S (row 0's sum; identical across rows)."""
        return int(self.table[0].sum())

    def query(self, key: int) -> float:
        """Unbiased per-key estimate (median of per-row estimates)."""
        s = float(self.total())
        w = self.width
        estimates = np.empty(self.rows, dtype=np.float64)
        for r, h in enumerate(self._hashes):
            v = float(self.table[r, h(key) % w])
            estimates[r] = (v - s / w) / (1.0 - 1.0 / w)
        return float(np.median(estimates))

    def query_many(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        s = float(self.total())
        w = self.width
        estimates = np.empty((self.rows, len(keys)), dtype=np.float64)
        for r, h in enumerate(self._hashes):
            buckets = (h.hash_array(keys) % np.uint64(w)).astype(np.intp)
            estimates[r] = (self.table[r, buckets] - s / w) / (1.0 - 1.0 / w)
        return np.median(estimates, axis=0)

    def f2_estimate(self) -> float:
        """Unbiased F2 estimate from a single k-ary sketch row set."""
        s = float(self.total())
        w = self.width
        row_est = ((self.table.astype(np.float64) ** 2).sum(axis=1) - s * s / w) \
            * (w / (w - 1.0))
        return float(np.median(row_est))

    def subtract(self, other: "KArySketch") -> "KArySketch":
        """Counter-wise difference sketch (interval A minus interval B)."""
        self._check_compatible(other)
        out = KArySketch.__new__(KArySketch)
        out.rows, out.width, out.seed = self.rows, self.width, self.seed
        out.counter_bytes = self.counter_bytes
        out.table = self.table - other.table
        out._hashes = self._hashes
        out._packed = self._packed
        return out

    def merge(self, other: "KArySketch") -> "KArySketch":
        self._check_compatible(other)
        out = KArySketch.__new__(KArySketch)
        out.rows, out.width, out.seed = self.rows, self.width, self.seed
        out.counter_bytes = self.counter_bytes
        out.table = self.table + other.table
        out._hashes = self._hashes
        out._packed = self._packed
        return out

    def _check_compatible(self, other: "KArySketch") -> None:
        if not isinstance(other, KArySketch):
            raise IncompatibleSketchError(
                f"cannot combine KArySketch with {type(other).__name__}")
        if (self.rows, self.width) != (other.rows, other.width) \
                or self.seed is None or self.seed != other.seed:
            raise IncompatibleSketchError(
                "k-ary sketches must share geometry and an explicit seed")

    def memory_bytes(self) -> int:
        return self.rows * self.width * self.counter_bytes

    def update_cost(self) -> UpdateCost:
        return UpdateCost(hashes=self.rows, counter_updates=self.rows,
                          memory_words=self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KArySketch(rows={self.rows}, width={self.width}, seed={self.seed})"


def total_change(diff: KArySketch) -> float:
    """Estimate the total L1 change ``D = sum_x |f_A(x) - f_B(x)|``.

    A k-ary sketch cannot compute an L1 norm directly; following the
    original paper's practice we use the per-row sum of absolute bucket
    differences, which upper-approximates D (collisions can only cancel),
    taking the median across rows.
    """
    return float(np.median(np.abs(diff.table).sum(axis=1)))
