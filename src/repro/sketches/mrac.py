"""Flow size distribution estimation from a counter array (Kumar et al.,
SIGMETRICS 2004 — "MRAC").

The paper's introduction lists the flow size distribution [29] among the
metrics management depends on; this is the custom streaming structure
built for it.  The data plane is minimal — ``m`` counters, one hash, one
increment per packet — and all intelligence is offline: an EM algorithm
de-convolves hash collisions out of the observed counter-value histogram
to recover ``phi[s]`` = number of flows of size ``s``.

EM model (the standard simplification of Kumar's):

- flows land in counters uniformly; the number of flows per counter is
  Poisson(``lambda = n / m``);
- a counter holding flows of sizes ``(s_1..s_k)`` shows value ``Σ s_i``;
- the E-step distributes each observed value ``v`` over the partitions
  of ``v`` into at most ``max_flows_per_counter`` flow sizes, weighted
  by the current distribution estimate; the M-step re-estimates ``phi``.

Counters larger than ``max_size`` are attributed to single elephant
flows (collisions among elephants are negligible at sane load factors),
which keeps the partition enumeration bounded.
"""

from __future__ import annotations

import math
from itertools import combinations_with_replacement
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.tabulation import TabulationHash
from repro.sketches.base import Sketch, UpdateCost


def _partitions(value: int, max_parts: int, max_size: int) -> List[Tuple[int, ...]]:
    """All multisets of at most ``max_parts`` sizes in [1, max_size]
    summing to ``value`` (value <= max_size assumed)."""
    out = [(value,)]
    if max_parts >= 2:
        for a in range(1, value // 2 + 1):
            out.append((a, value - a))
    if max_parts >= 3:
        for a in range(1, value // 3 + 1):
            for b in range(a, (value - a) // 2 + 1):
                c = value - a - b
                if c >= b:
                    out.append((a, b, c))
    return out


class MRACSketch(Sketch):
    """Counter array + EM estimator for the flow size distribution.

    Parameters
    ----------
    counters:
        Array size ``m``; accuracy needs load factor ``n/m`` below ~1.
    max_size:
        Largest flow size modelled by EM; larger counters are treated
        as single elephant flows.
    max_flows_per_counter:
        Partition-order cap of the EM (2 or 3; 3 is Kumar's setting).
    """

    __slots__ = ("m", "seed", "max_size", "max_flows", "em_iterations",
                 "counters", "_hash")

    def __init__(self, counters: int, seed: Optional[int] = None,
                 max_size: int = 100, max_flows_per_counter: int = 3,
                 em_iterations: int = 20) -> None:
        if counters < 8:
            raise ConfigurationError(f"counters must be >= 8, got {counters}")
        if max_flows_per_counter not in (1, 2, 3):
            raise ConfigurationError(
                "max_flows_per_counter must be 1, 2 or 3")
        if max_size < 1:
            raise ConfigurationError(f"max_size must be >= 1, got {max_size}")
        self.m = counters
        self.seed = seed
        self.max_size = max_size
        self.max_flows = max_flows_per_counter
        self.em_iterations = em_iterations
        self.counters = np.zeros(counters, dtype=np.int64)
        self._hash = TabulationHash(seed=seed)

    # ------------------------------------------------------------------ #
    # data plane
    # ------------------------------------------------------------------ #

    def update(self, key: int, weight: int = 1) -> None:
        self.counters[self._hash(key) % self.m] += weight

    def update_array(self, keys: np.ndarray,
                     weights: Optional[np.ndarray] = None) -> None:
        idx = (self._hash.hash_array(keys) % np.uint64(self.m)).astype(np.intp)
        if weights is None:
            np.add.at(self.counters, idx, 1)
        else:
            np.add.at(self.counters, idx, weights)

    # ------------------------------------------------------------------ #
    # offline estimation
    # ------------------------------------------------------------------ #

    def observed_histogram(self) -> Dict[int, int]:
        """``value -> #counters`` for non-zero counter values."""
        values, counts = np.unique(self.counters[self.counters > 0],
                                   return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def estimate_distribution(self) -> np.ndarray:
        """EM estimate of ``phi``: index ``s`` (1-based) -> #flows of size s.

        Returns an array of length ``max_size + 1`` (index 0 unused);
        elephant counters (> max_size) contribute one flow at their
        clamped size ``max_size``.
        """
        hist = self.observed_histogram()
        phi = np.zeros(self.max_size + 1, dtype=np.float64)
        elephants = 0.0
        small_hist = {}
        for value, count in hist.items():
            if value > self.max_size:
                elephants += count
            else:
                small_hist[value] = count
                phi[value] += count  # init: pretend no collisions
        if not small_hist:
            phi[self.max_size] += elephants
            return phi

        partitions = {v: _partitions(v, self.max_flows, self.max_size)
                      for v in small_hist}

        for _ in range(self.em_iterations):
            n = phi.sum() + elephants
            if n <= 0:
                break
            lam = n / self.m
            p = phi / max(phi.sum(), 1e-12)
            log_p = np.full_like(p, -np.inf)
            positive = p > 0
            log_p[positive] = np.log(p[positive])
            # Poisson(k) factors, conditioned on counter non-empty.
            log_poisson = [
                -lam + k * math.log(max(lam, 1e-300)) - math.lgamma(k + 1)
                for k in range(self.max_flows + 1)
            ]
            new_phi = np.zeros_like(phi)
            for value, count in small_hist.items():
                weights = []
                for combo in partitions[value]:
                    k = len(combo)
                    log_w = log_poisson[k] + _log_multiset_coeff(combo)
                    for s in combo:
                        log_w += log_p[s]
                    weights.append(log_w)
                weights = np.array(weights)
                if np.all(np.isinf(weights)):
                    # Current phi gives this value probability 0;
                    # fall back to the singleton explanation.
                    new_phi[value] += count
                    continue
                weights = np.exp(weights - weights.max())
                weights /= weights.sum()
                for combo, w in zip(partitions[value], weights):
                    for s in combo:
                        new_phi[s] += count * w
            phi = new_phi
        phi[self.max_size] += elephants
        return phi

    def estimate_flow_count(self) -> float:
        """Total number of flows implied by the EM estimate."""
        return float(self.estimate_distribution().sum())

    def load_factor(self) -> float:
        """Occupied fraction of the counter array."""
        return float((self.counters > 0).mean())

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        return self.m * 4

    def update_cost(self) -> UpdateCost:
        return UpdateCost(hashes=1, counter_updates=1, memory_words=1)


def _log_multiset_coeff(combo: Tuple[int, ...]) -> float:
    """log of the multinomial coefficient k! / prod(multiplicities!)."""
    k = len(combo)
    coeff = math.lgamma(k + 1)
    current, run = None, 0
    for s in combo:
        if s == current:
            run += 1
        else:
            coeff -= math.lgamma(run + 1)
            current, run = s, 1
    coeff -= math.lgamma(run + 1)
    return coeff
