"""Linear-counting bitmap distinct counter (Whang et al. 1990).

OpenSketch's DDoS task counts distinct sources per destination with small
bitmaps; this is that primitive.  Each key sets one bit of an ``m``-bit
array; the cardinality estimate is ``-m * ln(z/m)`` where ``z`` is the
number of zero bits.  Accurate while the bitmap is not saturated
(roughly ``n < m ln m``), and extremely cheap: one hash, one bit write.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.tabulation import TabulationHash
from repro.sketches.base import Sketch, UpdateCost


class LinearCounter(Sketch):
    """An ``m``-bit linear-counting bitmap."""

    __slots__ = ("bits", "seed", "_bitmap", "_hash")

    def __init__(self, bits: int, seed: Optional[int] = None) -> None:
        if bits < 8:
            raise ConfigurationError(f"bits must be >= 8, got {bits}")
        self.bits = bits
        self.seed = seed
        self._bitmap = np.zeros(bits, dtype=bool)
        self._hash = TabulationHash(seed=seed)

    def update(self, key: int, weight: int = 1) -> None:
        # Distinct counting ignores weights; any appearance sets the bit.
        self._bitmap[self._hash(key) % self.bits] = True

    def update_array(self, keys: np.ndarray) -> None:
        idx = (self._hash.hash_array(keys) % np.uint64(self.bits)).astype(np.intp)
        self._bitmap[idx] = True

    def zero_bits(self) -> int:
        return int(self.bits - self._bitmap.sum())

    def cardinality(self) -> float:
        """Estimated number of distinct keys observed."""
        zeros = self.zero_bits()
        if zeros == 0:
            # Saturated: the estimator diverges; report the (coupon
            # collector) saturation point as a floor.
            return float(self.bits * math.log(self.bits))
        return float(-self.bits * math.log(zeros / self.bits))

    def saturated(self, threshold: float = 0.95) -> bool:
        """True when more than ``threshold`` of the bits are set."""
        return (self.bits - self.zero_bits()) / self.bits > threshold

    def merge(self, other: "LinearCounter") -> "LinearCounter":
        """Union of the two observed key sets (bitwise OR)."""
        if (self.bits, self.seed) != (other.bits, other.seed) or self.seed is None:
            from repro.errors import IncompatibleSketchError
            raise IncompatibleSketchError(
                "LinearCounters must share bits and an explicit seed")
        out = LinearCounter(self.bits, seed=self.seed)
        out._bitmap = self._bitmap | other._bitmap
        return out

    def memory_bytes(self) -> int:
        return (self.bits + 7) // 8

    def update_cost(self) -> UpdateCost:
        return UpdateCost(hashes=1, counter_updates=1, memory_words=1)
