"""Bloom filter (Bloom 1970).

Used by the OpenSketch-style DDoS pipeline to test "is this (src, dst)
flow new?" before incrementing a per-destination counter, and generally
available as a substrate primitive.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.tabulation import TabulationHash
from repro.sketches.base import Sketch, UpdateCost


class BloomFilter(Sketch):
    """A ``bits``-bit Bloom filter with ``num_hashes`` hash functions."""

    __slots__ = ("bits", "num_hashes", "seed", "_bitmap", "_hashes")

    def __init__(self, bits: int, num_hashes: int = 4,
                 seed: Optional[int] = None) -> None:
        if bits < 8:
            raise ConfigurationError(f"bits must be >= 8, got {bits}")
        if num_hashes < 1:
            raise ConfigurationError(
                f"num_hashes must be >= 1, got {num_hashes}")
        self.bits = bits
        self.num_hashes = num_hashes
        self.seed = seed
        self._bitmap = np.zeros(bits, dtype=bool)
        rng = random.Random(seed)
        self._hashes: List[TabulationHash] = [
            TabulationHash(rng=rng) for _ in range(num_hashes)
        ]

    @classmethod
    def for_capacity(cls, capacity: int, fp_rate: float = 0.01,
                     seed: Optional[int] = None) -> "BloomFilter":
        """Size a filter for ``capacity`` insertions at ``fp_rate``."""
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 < fp_rate < 1.0:
            raise ConfigurationError(f"fp_rate must be in (0,1), got {fp_rate}")
        bits = max(8, int(math.ceil(-capacity * math.log(fp_rate)
                                    / (math.log(2) ** 2))))
        k = max(1, int(round(bits / capacity * math.log(2))))
        return cls(bits=bits, num_hashes=k, seed=seed)

    def update(self, key: int, weight: int = 1) -> None:
        self.add(key)

    def add(self, key: int) -> None:
        for h in self._hashes:
            self._bitmap[h(key) % self.bits] = True

    def __contains__(self, key: int) -> bool:
        return all(self._bitmap[h(key) % self.bits] for h in self._hashes)

    def add_if_new(self, key: int) -> bool:
        """Add ``key``; return True iff it was (probably) not present.

        The one-pass test-and-set the DDoS pipeline uses.
        """
        is_new = False
        for h in self._hashes:
            idx = h(key) % self.bits
            if not self._bitmap[idx]:
                is_new = True
                self._bitmap[idx] = True
        return is_new

    def fill_ratio(self) -> float:
        return float(self._bitmap.mean())

    def memory_bytes(self) -> int:
        return (self.bits + 7) // 8

    def update_cost(self) -> UpdateCost:
        return UpdateCost(hashes=self.num_hashes,
                          counter_updates=self.num_hashes,
                          memory_words=self.num_hashes)
