"""HyperLogLog distinct counter (Flajolet et al. 2007).

The constant-relative-error companion to :class:`LinearCounter`: ``2**p``
6-bit registers, standard bias correction, and linear-counting fallback in
the small-cardinality regime.  Used as the second distinct-counting
baseline for the DDoS experiment (Figure 5) and for the ``g(x)=x**0``
ground-truth cross-checks.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.hashing.tabulation import TabulationHash
from repro.sketches.base import Sketch, UpdateCost


def _alpha(m: int) -> float:
    """The standard HLL bias-correction constant for ``m`` registers."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1 + 1.079 / m)


class HyperLogLog(Sketch):
    """HyperLogLog with ``2**precision`` registers.

    Parameters
    ----------
    precision:
        ``p`` in [4, 18]; relative error is about ``1.04 / sqrt(2**p)``.
    """

    __slots__ = ("precision", "registers", "seed", "_hash", "_m")

    def __init__(self, precision: int = 12, seed: Optional[int] = None) -> None:
        if not 4 <= precision <= 18:
            raise ConfigurationError(
                f"precision must be in [4, 18], got {precision}")
        self.precision = precision
        self.seed = seed
        self._m = 1 << precision
        self.registers = np.zeros(self._m, dtype=np.uint8)
        self._hash = TabulationHash(seed=seed)

    def update(self, key: int, weight: int = 1) -> None:
        h = self._hash(key)
        idx = h >> (64 - self.precision)
        # Rank = position of the first 1-bit in the remaining bits.
        rest = h & ((1 << (64 - self.precision)) - 1)
        rank = (64 - self.precision) - rest.bit_length() + 1
        if rank > self.registers[idx]:
            self.registers[idx] = rank

    def update_array(self, keys: np.ndarray) -> None:
        h = self._hash.hash_array(keys)
        idx = (h >> np.uint64(64 - self.precision)).astype(np.intp)
        rest = h & np.uint64((1 << (64 - self.precision)) - 1)
        # bit_length via log2 is unsafe at 0; use a loop-free formula.
        rest_f = rest.astype(np.float64)
        bl = np.zeros(len(rest), dtype=np.int64)
        nz = rest > 0
        bl[nz] = np.floor(np.log2(rest_f[nz])).astype(np.int64) + 1
        rank = (64 - self.precision) - bl + 1
        np.maximum.at(self.registers, idx, rank.astype(np.uint8))

    def cardinality(self) -> float:
        m = self._m
        regs = self.registers.astype(np.float64)
        raw = _alpha(m) * m * m / np.power(2.0, -regs).sum()
        if raw <= 2.5 * m:
            zeros = int((self.registers == 0).sum())
            if zeros:
                return float(m * math.log(m / zeros))
        return float(raw)

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        if (self.precision, self.seed) != (other.precision, other.seed) \
                or self.seed is None:
            raise IncompatibleSketchError(
                "HyperLogLogs must share precision and an explicit seed")
        out = HyperLogLog(self.precision, seed=self.seed)
        out.registers = np.maximum(self.registers, other.registers)
        return out

    def memory_bytes(self) -> int:
        # 6 bits per register in hardware encodings; round up per byte here.
        return self._m

    def update_cost(self) -> UpdateCost:
        return UpdateCost(hashes=1, counter_updates=1, memory_words=1)
