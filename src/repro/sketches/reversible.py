"""Reversible sketch via modular hashing (Schweller et al., ToN 2007).

Section 5 of the paper ("Reversibility") asks whether the keys behind
anomalous buckets can be *recovered* instead of thrown away.  The classic
answer is modular hashing: split the 32-bit key into ``chunks`` pieces,
hash each piece independently to a few bits, and concatenate the piece
hashes into the bucket index.  Recovery then works per piece: for a heavy
bucket, each index chunk constrains its key piece to the small preimage
set of that chunk hash, and intersecting candidate sets across several
independent rows prunes the false combinations.

The price of reversibility is a weaker hash (pieces are hashed
independently, so structured keys collide more) — the trade-off the
original paper documents, visible here in the tests.

This implementation recovers exact-key candidates for L1-heavy buckets
of an insert-only or difference stream, making it a drop-in "which key
caused this change?" companion to the k-ary change sketch.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.sketches.base import Sketch, UpdateCost


class ReversibleSketch(Sketch):
    """A reversible counting sketch over 32-bit keys.

    Parameters
    ----------
    rows:
        Independent modular-hash rows; recovery intersects across them.
    chunk_bits:
        Bits per key piece (key is split into ``32 / chunk_bits`` pieces).
    bucket_bits_per_chunk:
        Bits each piece hash contributes to the bucket index.  The table
        width is ``2 ** (pieces * bucket_bits_per_chunk)``.
    """

    def __init__(self, rows: int = 4, chunk_bits: int = 8,
                 bucket_bits_per_chunk: int = 3,
                 seed: Optional[int] = None) -> None:
        if 32 % chunk_bits != 0:
            raise ConfigurationError(
                f"chunk_bits {chunk_bits} must divide 32")
        if not 1 <= bucket_bits_per_chunk <= chunk_bits:
            raise ConfigurationError(
                "bucket_bits_per_chunk must be in [1, chunk_bits]")
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        self.rows = rows
        self.chunk_bits = chunk_bits
        self.bucket_bits = bucket_bits_per_chunk
        self.chunks = 32 // chunk_bits
        self.width = 1 << (self.chunks * bucket_bits_per_chunk)
        self.seed = seed
        rng = random.Random(seed)
        # Per (row, chunk): a lookup table mapping piece value -> hash.
        chunk_values = 1 << chunk_bits
        self._tables = np.empty((rows, self.chunks, chunk_values),
                                dtype=np.int64)
        for r in range(rows):
            for c in range(self.chunks):
                for v in range(chunk_values):
                    self._tables[r, c, v] = rng.getrandbits(
                        bucket_bits_per_chunk)
        self.table = np.zeros((rows, self.width), dtype=np.int64)
        # Preimages: per (row, chunk, hash value) -> list of piece values.
        self._preimages: List[List[Dict[int, List[int]]]] = []
        for r in range(rows):
            row_pre = []
            for c in range(self.chunks):
                buckets: Dict[int, List[int]] = {}
                for v in range(chunk_values):
                    buckets.setdefault(int(self._tables[r, c, v]), []).append(v)
                row_pre.append(buckets)
            self._preimages.append(row_pre)

    # ------------------------------------------------------------------ #
    # hashing
    # ------------------------------------------------------------------ #

    def _pieces(self, key: int) -> List[int]:
        mask = (1 << self.chunk_bits) - 1
        return [(key >> (self.chunk_bits * i)) & mask
                for i in range(self.chunks)]

    def bucket(self, row: int, key: int) -> int:
        """The modular-hash bucket of ``key`` in ``row``."""
        index = 0
        for c, piece in enumerate(self._pieces(key)):
            index |= int(self._tables[row, c, piece]) \
                << (self.bucket_bits * c)
        return index

    def _buckets_array(self, row: int, keys: np.ndarray) -> np.ndarray:
        mask = np.uint64((1 << self.chunk_bits) - 1)
        index = np.zeros(len(keys), dtype=np.int64)
        for c in range(self.chunks):
            pieces = ((keys >> np.uint64(self.chunk_bits * c)) & mask) \
                .astype(np.intp)
            index |= self._tables[row, c][pieces] << (self.bucket_bits * c)
        return index

    # ------------------------------------------------------------------ #
    # stream interface
    # ------------------------------------------------------------------ #

    def update(self, key: int, weight: int = 1) -> None:
        for r in range(self.rows):
            self.table[r, self.bucket(r, key)] += weight

    def update_array(self, keys: np.ndarray,
                     weights: Optional[np.ndarray] = None) -> None:
        keys = np.asarray(keys, dtype=np.uint64)
        if weights is None:
            weights = np.ones(len(keys), dtype=np.int64)
        for r in range(self.rows):
            np.add.at(self.table[r], self._buckets_array(r, keys), weights)

    def query(self, key: int) -> float:
        """Point estimate (k-ary style unbiased median over rows)."""
        s = float(self.table[0].sum())
        w = self.width
        estimates = [
            (float(self.table[r, self.bucket(r, key)]) - s / w)
            / (1.0 - 1.0 / w)
            for r in range(self.rows)
        ]
        return float(np.median(estimates))

    def subtract(self, other: "ReversibleSketch") -> "ReversibleSketch":
        if not isinstance(other, ReversibleSketch) \
                or (self.rows, self.chunk_bits, self.bucket_bits, self.seed)\
                != (other.rows, other.chunk_bits, other.bucket_bits,
                    other.seed) or self.seed is None:
            raise IncompatibleSketchError(
                "reversible sketches must share geometry and explicit seed")
        out = ReversibleSketch(rows=self.rows, chunk_bits=self.chunk_bits,
                               bucket_bits_per_chunk=self.bucket_bits,
                               seed=self.seed)
        out.table = self.table - other.table
        return out

    # ------------------------------------------------------------------ #
    # reversal
    # ------------------------------------------------------------------ #

    def _heavy_buckets(self, row: int, threshold: float) -> List[int]:
        return np.nonzero(np.abs(self.table[row]) >= threshold)[0].tolist()

    def _candidates_for_bucket(self, row: int, bucket: int) -> List[int]:
        """All keys a bucket's modular hash could have come from."""
        per_chunk: List[List[int]] = []
        mask = (1 << self.bucket_bits) - 1
        for c in range(self.chunks):
            hash_value = (bucket >> (self.bucket_bits * c)) & mask
            per_chunk.append(
                self._preimages[row][c].get(hash_value, []))
        keys = []
        for combo in itertools.product(*per_chunk):
            key = 0
            for c, piece in enumerate(combo):
                key |= piece << (self.chunk_bits * c)
            keys.append(key)
        return keys

    def _candidate_array(self, row: int, bucket: int) -> np.ndarray:
        """Vectorised preimage enumeration: same keys as
        :meth:`_candidates_for_bucket`, built by broadcasting the
        per-chunk preimage sets instead of a Python product loop."""
        mask = (1 << self.bucket_bits) - 1
        per_chunk: List[np.ndarray] = []
        for c in range(self.chunks):
            hash_value = (bucket >> (self.bucket_bits * c)) & mask
            pre = self._preimages[row][c].get(hash_value, [])
            if not pre:
                return np.empty(0, dtype=np.uint64)
            per_chunk.append(np.asarray(pre, dtype=np.uint64))
        keys = per_chunk[0]
        for c in range(1, self.chunks):
            shifted = per_chunk[c] << np.uint64(self.chunk_bits * c)
            keys = (keys[:, None] | shifted[None, :]).ravel()
        return keys

    def recover_heavy_keys(self, threshold: float,
                           verify_rows: Optional[int] = None,
                           max_buckets: int = 32) -> List[Tuple[int, float]]:
        """Recover the keys of buckets with |count| >= threshold.

        Enumerate the modular-hash preimages of row 0's heavy buckets and
        keep the candidates whose buckets are heavy in (all) other rows
        too — the cross-row intersection that makes reversal sound.

        Returns ``(key, estimate)`` pairs sorted by |estimate|.  Raises
        ConfigurationError if row 0 has more than ``max_buckets`` heavy
        buckets (the preimage enumeration would blow up — raise the
        threshold instead).
        """
        verify_rows = self.rows if verify_rows is None else verify_rows
        heavy0 = self._heavy_buckets(0, threshold)
        if len(heavy0) > max_buckets:
            raise ConfigurationError(
                f"{len(heavy0)} heavy buckets in row 0 exceeds "
                f"max_buckets={max_buckets}; raise the threshold")
        recovered: Dict[int, float] = {}
        for bucket in heavy0:
            # One preimage set per bucket can reach |preimage|^chunks
            # keys (~1M at the default geometry); enumerate and verify
            # them as arrays, not in a Python loop.
            candidates = self._candidate_array(0, bucket)
            if candidates.size == 0:
                continue
            confirmed = np.ones(len(candidates), dtype=bool)
            for r in range(1, verify_rows):
                row_buckets = self._buckets_array(r, candidates)
                confirmed &= np.abs(self.table[r, row_buckets]) >= threshold
            for key in candidates[confirmed].tolist():
                key = int(key)
                if key not in recovered:
                    recovered[key] = self.query(key)
        survivors = [(k, est) for k, est in recovered.items()
                     if abs(est) >= threshold * 0.5]
        survivors.sort(key=lambda kv: -abs(kv[1]))
        return survivors

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        return self.rows * self.width * 4

    def update_cost(self) -> UpdateCost:
        # One table lookup per (row, chunk) plus one counter per row.
        return UpdateCost(hashes=self.rows * self.chunks,
                          counter_updates=self.rows,
                          memory_words=self.rows * (self.chunks + 1))
