"""Count Sketch (Charikar, Chen, Farach-Colton 2002).

The L2 heavy hitter / point-query structure at the heart of UnivMon: each of
``rows`` rows hashes the key to one of ``width`` buckets and adds
``sign(key) * weight`` there; a point query returns the median over rows of
``sign(key) * bucket``.  The estimator is unbiased with per-row standard
deviation ``L2 / sqrt(width)``, and the median over rows turns that into a
high-probability guarantee.

Count Sketch is *linear*: sketches with the same geometry and seed can be
added and subtracted counter-by-counter.  Subtraction is what makes change
detection (Figure 6) essentially free for UnivMon.

Both bucket index and sign are derived from a single tabulation hash per
row (low bits -> bucket, top bit -> sign); simple tabulation is 3-wise
independent, more than the pairwise independence the analysis needs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.hashing.tabulation import (
    TabulationHash,
    gather_packed,
    pack_tabulation_fields,
    tabulation_family,
)
from repro.sketches.base import Sketch, UpdateCost


class CountSketch(Sketch):
    """A ``rows x width`` Count Sketch over integer keys.

    Parameters
    ----------
    rows:
        Number of independent hash rows (median is taken across these).
    width:
        Buckets per row; per-row error is ``L2 / sqrt(width)``.
    seed:
        Seeds the row hashes; equal (rows, width, seed) sketches are
        mergeable and subtractable.
    counter_bytes:
        Bytes charged per counter in :meth:`memory_bytes` (hardware
        sketches use 4-byte counters; the accounting follows suit).
    """

    __slots__ = ("rows", "width", "seed", "counter_bytes", "table", "_hashes",
                 "_packed")

    def __init__(self, rows: int, width: int, seed: Optional[int] = None,
                 counter_bytes: int = 4) -> None:
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        self.rows = rows
        self.width = width
        self.seed = seed
        self.counter_bytes = counter_bytes
        self.table = np.zeros((rows, width), dtype=np.int64)
        self._hashes: List[TabulationHash] = \
            list(tabulation_family(seed, rows))
        self._packed = None

    def _packed_state(self):
        """Fused slot tables for the bulk path, built lazily and shared
        by copies (the hash functions are immutable).

        When ``width`` is a power of two and every row's ``(sign,
        bucket)`` field fits one 64-bit word, returns ``(tables,
        field_bits)`` where XOR-gathering ``tables`` yields, per row ``r``
        at bit offset ``r * field_bits``, the slot ``sign_bit * width +
        bucket`` — both derived from the hash exactly as the scalar path
        derives them.  Returns ``(None, 0)`` when the geometry cannot be
        packed (the generic bulk path is used instead).
        """
        if self._packed is None:
            lg2w = self.width.bit_length() - 1
            field_bits = lg2w + 1
            if self.width == 1 << lg2w and self.rows * field_bits <= 63:
                mask = np.uint64(self.width - 1)
                shift = np.uint64(lg2w)
                tables = pack_tabulation_fields(
                    self._hashes,
                    lambda t: (t & mask) | ((t >> np.uint64(63)) << shift),
                    field_bits)
                self._packed = (tables, field_bits)
            else:
                self._packed = (None, 0)
        return self._packed

    # ------------------------------------------------------------------ #
    # update / query
    # ------------------------------------------------------------------ #

    def update(self, key: int, weight: int = 1) -> None:
        table = self.table
        width = self.width
        for r, h in enumerate(self._hashes):
            v = h(key)
            sign = 1 if (v >> 63) else -1
            table[r, v % width] += sign * weight

    def update_array(self, keys: np.ndarray,
                     weights: Optional[np.ndarray] = None) -> None:
        """Vectorised bulk update (numpy ``uint64`` keys).

        Fast path: one XOR-gather over the fused slot tables
        (:meth:`_packed_state`) evaluates every row's ``(sign, bucket)``
        at once, then a per-row ``np.bincount`` over ``2 * width`` slots
        accumulates — the sign bit selects the half, so the signed sum
        is ``counts[width:] - counts[:width]`` with no sign multiply.
        Falls back to a 2-D hash + flattened ``bincount`` when the
        geometry cannot be packed into 64-bit slot words.
        """
        if len(keys) == 0:
            return
        if weights is not None:
            weights = np.asarray(weights).astype(np.int64, copy=False)
        table = self.table
        rows, width = self.rows, self.width
        packed, field_bits = self._packed_state()
        if packed is not None:
            slots = gather_packed(packed, keys)
            wf = None if weights is None else weights.astype(np.float64)
            fmask = np.int64((2 * width) - 1)
            for r in range(rows):
                slot = (slots >> np.int64(r * field_bits)) & fmask
                if wf is None:
                    counts = np.bincount(slot, minlength=2 * width)
                else:
                    # float64 sums of int64 weights < 2**53 stay exact.
                    counts = np.bincount(slot, weights=wf,
                                         minlength=2 * width)
                    counts = counts.astype(np.int64)
                table[r] += counts[width:]
                table[r] -= counts[:width]
            return
        v = TabulationHash.hash_matrix(self._hashes, keys)      # (rows, n)
        sign = np.where(v >> np.uint64(63), 1, -1).astype(np.int64)
        buckets = (v % np.uint64(width)).astype(np.int64)
        slots = buckets + (np.arange(rows, dtype=np.int64)[:, None] * width)
        signed = sign if weights is None else sign * weights
        counts = np.bincount(slots.ravel(), weights=signed.ravel(),
                             minlength=rows * width)
        table += counts.astype(np.int64).reshape(rows, width)

    def query(self, key: int) -> float:
        """Unbiased point estimate of the key's total weight (median rule)."""
        estimates = np.empty(self.rows, dtype=np.float64)
        for r, h in enumerate(self._hashes):
            v = h(key)
            sign = 1 if (v >> 63) else -1
            estimates[r] = sign * self.table[r, v % self.width]
        return float(np.median(estimates))

    def query_many(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised point queries for a ``uint64`` key array."""
        keys = np.asarray(keys, dtype=np.uint64)
        packed, field_bits = self._packed_state()
        if packed is not None:
            slots = gather_packed(packed, keys)
            width = np.int64(self.width)
            fmask = np.int64(2 * self.width - 1)
            estimates = np.empty((self.rows, len(keys)), dtype=np.float64)
            for r in range(self.rows):
                slot = (slots >> np.int64(r * field_bits)) & fmask
                vals = self.table[r, slot & (width - 1)]
                # slot >= width <=> sign bit set <=> sign is +1.
                estimates[r] = np.where(slot >= width, vals, -vals)
            return np.median(estimates, axis=0)
        v = TabulationHash.hash_matrix(self._hashes, keys)      # (rows, n)
        sign = np.where(v >> np.uint64(63), 1.0, -1.0)
        buckets = (v % np.uint64(self.width)).astype(np.intp)
        rows_idx = np.arange(self.rows)[:, None]
        estimates = sign * self.table[rows_idx, buckets]
        return np.median(estimates, axis=0)

    def l2_estimate(self) -> float:
        """Estimate of the stream's L2 norm (median of per-row norms)."""
        row_norms = np.sqrt((self.table.astype(np.float64) ** 2).sum(axis=1))
        return float(np.median(row_norms))

    def f2_estimate(self) -> float:
        """Estimate of the second frequency moment ``F2 = sum f_i**2``."""
        row_f2 = (self.table.astype(np.float64) ** 2).sum(axis=1)
        return float(np.median(row_f2))

    # ------------------------------------------------------------------ #
    # linearity
    # ------------------------------------------------------------------ #

    def _check_compatible(self, other: "CountSketch") -> None:
        if not isinstance(other, CountSketch):
            raise IncompatibleSketchError(
                f"cannot combine CountSketch with {type(other).__name__}")
        if (self.rows, self.width) != (other.rows, other.width):
            raise IncompatibleSketchError(
                f"geometry mismatch: {self.rows}x{self.width} vs "
                f"{other.rows}x{other.width}")
        if self.seed is None or self.seed != other.seed:
            raise IncompatibleSketchError(
                "sketches must share an explicit seed to be combined")

    def merge(self, other: "CountSketch") -> "CountSketch":
        """Return the sketch of the concatenated streams (self + other)."""
        self._check_compatible(other)
        out = self.copy()
        out.table += other.table
        return out

    def subtract(self, other: "CountSketch") -> "CountSketch":
        """Return the sketch of the *difference* stream (self - other).

        Point queries on the result estimate ``f_A(x) - f_B(x)``; this is
        the primitive behind UnivMon change detection.
        """
        self._check_compatible(other)
        out = self.copy()
        out.table -= other.table
        return out

    def copy(self) -> "CountSketch":
        out = CountSketch.__new__(CountSketch)
        out.rows = self.rows
        out.width = self.width
        out.seed = self.seed
        out.counter_bytes = self.counter_bytes
        out.table = self.table.copy()
        out._hashes = self._hashes  # immutable, shareable
        out._packed = self._packed  # derived from the hashes, shareable
        return out

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        return self.rows * self.width * self.counter_bytes

    def update_cost(self) -> UpdateCost:
        return UpdateCost(hashes=self.rows, counter_updates=self.rows,
                          memory_words=self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CountSketch(rows={self.rows}, width={self.width}, "
                f"seed={self.seed})")
