"""AMS "tug-of-war" sketch for the second frequency moment (AMS 1996).

The seminal construction the paper's related-work section starts from.
Each of ``groups * copies`` independent counters maintains
``z = sum_i s(i) * f_i`` for a pairwise-independent sign hash ``s``;
``z**2`` is an unbiased estimate of ``F2 = sum f_i**2``, and
median-of-means over the groups gives the usual (eps, delta) guarantee.

Kept distinct from :class:`~repro.sketches.countsketch.CountSketch`
(which supersedes it in practice) because it is the textbook baseline for
the F2/ moment-estimation cross-checks in the test suite.
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.hashing.families import PolynomialHash
from repro.hashing.tabulation import TabulationHash
from repro.sketches.base import Sketch, UpdateCost


class AMSSketch(Sketch):
    """Median-of-means AMS F2 estimator with ``groups x copies`` counters.

    The variance bound of the original analysis needs *4-wise*
    independent signs; simple tabulation (the fast default) is 3-wise
    but behaves like fully random hashing in practice.  Pass
    ``strict_independence=True`` to use degree-3 polynomial hashing over
    GF(2^61 − 1) instead — exactly 4-wise, slower, and what the
    statistical tests pin the textbook bound against.
    """

    __slots__ = ("groups", "copies", "seed", "strict_independence",
                 "counters", "_hashes")

    def __init__(self, groups: int = 5, copies: int = 16,
                 seed: Optional[int] = None,
                 strict_independence: bool = False) -> None:
        if groups < 1 or copies < 1:
            raise ConfigurationError(
                f"groups and copies must be >= 1, got {groups}, {copies}")
        self.groups = groups
        self.copies = copies
        self.seed = seed
        self.strict_independence = strict_independence
        self.counters = np.zeros((groups, copies), dtype=np.int64)
        rng = random.Random(seed)
        if strict_independence:
            self._hashes = [
                [PolynomialHash(k=4, rng=rng) for _ in range(copies)]
                for _ in range(groups)
            ]
        else:
            self._hashes = [
                [TabulationHash(rng=rng) for _ in range(copies)]
                for _ in range(groups)
            ]

    def _sign(self, g: int, c: int, key: int) -> int:
        value = self._hashes[g][c](key)
        if self.strict_independence:
            return 1 if (value & 1) else -1
        return 1 if (value >> 63) else -1

    def update(self, key: int, weight: int = 1) -> None:
        counters = self.counters
        for g in range(self.groups):
            for c in range(self.copies):
                counters[g, c] += self._sign(g, c, key) * weight

    def update_array(self, keys: np.ndarray,
                     weights: Optional[np.ndarray] = None) -> None:
        if weights is None:
            weights = np.ones(len(keys), dtype=np.int64)
        for g in range(self.groups):
            for c in range(self.copies):
                v = self._hashes[g][c].hash_array(keys)
                if self.strict_independence:
                    bit = (v & np.uint64(1)).astype(bool)
                else:
                    bit = (v >> np.uint64(63)).astype(bool)
                sign = np.where(bit, 1, -1).astype(np.int64)
                self.counters[g, c] += int((sign * weights).sum())

    def f2_estimate(self) -> float:
        """Median (over groups) of means (over copies) of ``z**2``."""
        squares = self.counters.astype(np.float64) ** 2
        return float(np.median(squares.mean(axis=1)))

    def l2_estimate(self) -> float:
        return float(np.sqrt(max(self.f2_estimate(), 0.0)))

    def merge(self, other: "AMSSketch") -> "AMSSketch":
        if (self.groups, self.copies, self.seed, self.strict_independence) \
                != (other.groups, other.copies, other.seed,
                    other.strict_independence) or self.seed is None:
            raise IncompatibleSketchError(
                "AMS sketches must share geometry and an explicit seed")
        out = AMSSketch(self.groups, self.copies, seed=self.seed,
                        strict_independence=self.strict_independence)
        out.counters = self.counters + other.counters
        return out

    def memory_bytes(self) -> int:
        return self.groups * self.copies * 4

    def update_cost(self) -> UpdateCost:
        n = self.groups * self.copies
        return UpdateCost(hashes=n, counter_updates=n, memory_words=n)
