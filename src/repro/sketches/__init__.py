"""Streaming sketches: the building blocks and the custom baselines.

Two roles live here:

1. **Building blocks of UnivMon** — :class:`CountSketch` (the per-level
   L2 heavy hitter structure of Algorithm 1) and :class:`TopK`.
2. **Custom per-task baselines** in the spirit of the OpenSketch library
   the paper compares against: Count-Min + heap heavy hitters, the k-ary
   change-detection sketch, bitmap / HyperLogLog distinct counters, the
   AMS F2 sketch, sample-and-hold, and the Lall et al. sampled entropy
   estimator.

All sketches are deterministic given ``seed``, expose ``memory_bytes()``
for the accuracy-vs-memory figures, and the linear ones (Count Sketch,
Count-Min, k-ary, AMS) support ``merge`` and Count Sketch additionally
``subtract`` — the property change detection exploits.
"""

from repro.sketches.ams import AMSSketch
from repro.sketches.base import Sketch, UpdateCost
from repro.sketches.bitmap import LinearCounter
from repro.sketches.bloom import BloomFilter
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.entropy_sampling import SampledEntropyEstimator
from repro.sketches.exact import ExactCounter
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.kary import KArySketch
from repro.sketches.reversible import ReversibleSketch
from repro.sketches.sample_hold import SampleAndHold
from repro.sketches.topk import TopK

__all__ = [
    "Sketch",
    "UpdateCost",
    "CountSketch",
    "CountMinSketch",
    "TopK",
    "KArySketch",
    "LinearCounter",
    "HyperLogLog",
    "BloomFilter",
    "AMSSketch",
    "SampleAndHold",
    "SampledEntropyEstimator",
    "ReversibleSketch",
    "ExactCounter",
]
