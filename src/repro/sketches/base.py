"""Common sketch interface and per-update cost accounting.

``UpdateCost`` is the unit of the repo's Intel-PCM substitute (see
``repro.eval.cost``): each sketch reports how many hash evaluations and
counter touches one update costs, and the cost model converts those to
relative "cycles".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass(frozen=True)
class UpdateCost:
    """Operation counts charged by one sketch update.

    Attributes
    ----------
    hashes:
        Number of hash-function evaluations.
    counter_updates:
        Number of counters read-modified-written.
    memory_words:
        Number of distinct memory words touched (reads + writes); the
        proxy for cache traffic.
    """

    hashes: int = 0
    counter_updates: int = 0
    memory_words: int = 0

    def __add__(self, other: "UpdateCost") -> "UpdateCost":
        return UpdateCost(
            hashes=self.hashes + other.hashes,
            counter_updates=self.counter_updates + other.counter_updates,
            memory_words=self.memory_words + other.memory_words,
        )

    def scaled(self, n: int) -> "UpdateCost":
        """The cost of ``n`` identical updates."""
        return UpdateCost(
            hashes=self.hashes * n,
            counter_updates=self.counter_updates * n,
            memory_words=self.memory_words * n,
        )


class Sketch(abc.ABC):
    """Abstract base for all streaming summaries in this library.

    A sketch consumes ``(key, weight)`` updates where ``key`` is an integer
    (see ``repro.dataplane.keys`` for how flow identifiers are encoded) and
    answers queries from its compact state.
    """

    @abc.abstractmethod
    def update(self, key: int, weight: int = 1) -> None:
        """Fold one stream element into the sketch."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Size of the data-plane state, in bytes.

        This is the x-axis of every accuracy-vs-memory figure, so it must
        count the counters the algorithm keeps (geometry), not Python
        object overhead.
        """

    @abc.abstractmethod
    def update_cost(self) -> UpdateCost:
        """Operation counts charged by a single :meth:`update` call."""

    def process(self, keys, weights=None) -> None:
        """Convenience: fold an iterable of keys (optionally weighted)."""
        if weights is None:
            for k in keys:
                self.update(k)
        else:
            for k, w in zip(keys, weights):
                self.update(k, w)
