"""Count-Min sketch (Cormode & Muthukrishnan 2005).

The workhorse of the OpenSketch library the paper benchmarks against.  Each
row hashes the key to a bucket and adds the weight; a point query takes the
*minimum* over rows, which overestimates by at most ``eps * L1`` with
probability ``1 - delta`` for ``width = e/eps`` and ``rows = ln(1/delta)``.

The optional *conservative update* variant only increments the minimal
counters, trading update cost for less overestimation — OpenSketch's
heavy-hitter pipeline uses it, so the baseline here supports it too.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.hashing.tabulation import (
    TabulationHash,
    gather_packed,
    pack_tabulation_fields,
    tabulation_family,
)
from repro.sketches.base import Sketch, UpdateCost


def _packed_bucket_state(hashes: List[TabulationHash], rows: int, width: int):
    """Fused bucket tables for signless tableau sketches (Count-Min,
    k-ary): ``(tables, field_bits)`` with row ``r``'s bucket at bit
    offset ``r * field_bits``, or ``(None, 0)`` when unpackable."""
    lg2w = width.bit_length() - 1
    if width == 1 << lg2w and lg2w > 0 and rows * lg2w <= 63:
        mask = np.uint64(width - 1)
        tables = pack_tabulation_fields(hashes, lambda t: t & mask, lg2w)
        return (tables, lg2w)
    return (None, 0)


def _bincount_rows(table: np.ndarray, slots: np.ndarray, field_bits: int,
                   weights: Optional[np.ndarray]) -> None:
    """Accumulate packed per-row bucket fields into ``table`` rows."""
    rows, width = table.shape
    fmask = np.int64(width - 1)
    wf = None if weights is None else weights.astype(np.float64)
    for r in range(rows):
        slot = (slots >> np.int64(r * field_bits)) & fmask
        if wf is None:
            counts = np.bincount(slot, minlength=width)
        else:
            # float64 sums of int64 weights < 2**53 stay exact.
            counts = np.bincount(slot, weights=wf,
                                 minlength=width).astype(np.int64)
        table[r] += counts


class CountMinSketch(Sketch):
    """A ``rows x width`` Count-Min sketch over integer keys."""

    __slots__ = ("rows", "width", "seed", "conservative", "counter_bytes",
                 "table", "_hashes", "_packed")

    def __init__(self, rows: int, width: int, seed: Optional[int] = None,
                 conservative: bool = False, counter_bytes: int = 4) -> None:
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        self.rows = rows
        self.width = width
        self.seed = seed
        self.conservative = conservative
        self.counter_bytes = counter_bytes
        self.table = np.zeros((rows, width), dtype=np.int64)
        self._hashes: List[TabulationHash] = \
            list(tabulation_family(seed, rows))
        self._packed = None

    def _buckets(self, key: int) -> List[int]:
        return [h(key) % self.width for h in self._hashes]

    def update(self, key: int, weight: int = 1) -> None:
        buckets = self._buckets(key)
        table = self.table
        if self.conservative and weight > 0:
            current = min(table[r, b] for r, b in enumerate(buckets))
            target = current + weight
            for r, b in enumerate(buckets):
                if table[r, b] < target:
                    table[r, b] = target
        else:
            for r, b in enumerate(buckets):
                table[r, b] += weight

    def update_array(self, keys: np.ndarray,
                     weights: Optional[np.ndarray] = None) -> None:
        """Vectorised bulk update (plain, non-conservative semantics).

        Hashes every row in one 2-D tabulation pass and accumulates with
        a single flattened ``np.bincount`` (see ``CountSketch``)."""
        if weights is not None:
            weights = np.asarray(weights).astype(np.int64, copy=False)
        if self.conservative:
            # Conservative update is inherently sequential; fall back.
            if weights is None:
                for k in np.asarray(keys).tolist():
                    self.update(int(k))
            else:
                for k, w in zip(np.asarray(keys).tolist(), weights.tolist()):
                    self.update(int(k), int(w))
            return
        if len(keys) == 0:
            return
        if self._packed is None:
            self._packed = _packed_bucket_state(self._hashes, self.rows,
                                                self.width)
        packed, field_bits = self._packed
        if packed is not None:
            _bincount_rows(self.table, gather_packed(packed, keys),
                           field_bits, weights)
            return
        v = TabulationHash.hash_matrix(self._hashes, keys)      # (rows, n)
        buckets = (v % np.uint64(self.width)).astype(np.int64)
        slots = buckets + (np.arange(self.rows, dtype=np.int64)[:, None]
                           * self.width)
        if weights is None:
            counts = np.bincount(slots.ravel(),
                                 minlength=self.rows * self.width)
        else:
            tiled = np.broadcast_to(weights, (self.rows, len(keys)))
            counts = np.bincount(slots.ravel(), weights=tiled.ravel(),
                                 minlength=self.rows * self.width)
        self.table += counts.astype(np.int64).reshape(self.rows, self.width)

    def query(self, key: int) -> int:
        """Point estimate: min over rows (never underestimates for
        non-negative streams)."""
        return int(min(self.table[r, b]
                       for r, b in enumerate(self._buckets(key))))

    def query_many(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        estimates = np.empty((self.rows, len(keys)), dtype=np.int64)
        for r, h in enumerate(self._hashes):
            buckets = (h.hash_array(keys) % np.uint64(self.width)).astype(np.intp)
            estimates[r] = self.table[r, buckets]
        return estimates.min(axis=0)

    def l1_estimate(self) -> int:
        """Total stream weight (exact for non-negative streams: row sum)."""
        return int(self.table[0].sum())

    def _check_compatible(self, other: "CountMinSketch") -> None:
        if not isinstance(other, CountMinSketch):
            raise IncompatibleSketchError(
                f"cannot combine CountMinSketch with {type(other).__name__}")
        if (self.rows, self.width) != (other.rows, other.width):
            raise IncompatibleSketchError(
                f"geometry mismatch: {self.rows}x{self.width} vs "
                f"{other.rows}x{other.width}")
        if self.seed is None or self.seed != other.seed:
            raise IncompatibleSketchError(
                "sketches must share an explicit seed to be combined")
        if self.conservative or other.conservative:
            raise IncompatibleSketchError(
                "conservative-update sketches are not linear and cannot "
                "be merged")

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Return the sketch of the concatenated streams."""
        self._check_compatible(other)
        out = CountMinSketch.__new__(CountMinSketch)
        out.rows = self.rows
        out.width = self.width
        out.seed = self.seed
        out.conservative = False
        out.counter_bytes = self.counter_bytes
        out.table = self.table + other.table
        out._hashes = self._hashes
        out._packed = self._packed
        return out

    def memory_bytes(self) -> int:
        return self.rows * self.width * self.counter_bytes

    def update_cost(self) -> UpdateCost:
        extra = self.rows if self.conservative else 0  # read-before-write
        return UpdateCost(hashes=self.rows,
                          counter_updates=self.rows,
                          memory_words=self.rows + extra)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CountMinSketch(rows={self.rows}, width={self.width}, "
                f"seed={self.seed}, conservative={self.conservative})")
