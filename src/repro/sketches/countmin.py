"""Count-Min sketch (Cormode & Muthukrishnan 2005).

The workhorse of the OpenSketch library the paper benchmarks against.  Each
row hashes the key to a bucket and adds the weight; a point query takes the
*minimum* over rows, which overestimates by at most ``eps * L1`` with
probability ``1 - delta`` for ``width = e/eps`` and ``rows = ln(1/delta)``.

The optional *conservative update* variant only increments the minimal
counters, trading update cost for less overestimation — OpenSketch's
heavy-hitter pipeline uses it, so the baseline here supports it too.
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.hashing.tabulation import TabulationHash
from repro.sketches.base import Sketch, UpdateCost


class CountMinSketch(Sketch):
    """A ``rows x width`` Count-Min sketch over integer keys."""

    __slots__ = ("rows", "width", "seed", "conservative", "counter_bytes",
                 "table", "_hashes")

    def __init__(self, rows: int, width: int, seed: Optional[int] = None,
                 conservative: bool = False, counter_bytes: int = 4) -> None:
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        self.rows = rows
        self.width = width
        self.seed = seed
        self.conservative = conservative
        self.counter_bytes = counter_bytes
        self.table = np.zeros((rows, width), dtype=np.int64)
        rng = random.Random(seed)
        self._hashes: List[TabulationHash] = [
            TabulationHash(rng=rng) for _ in range(rows)
        ]

    def _buckets(self, key: int) -> List[int]:
        return [h(key) % self.width for h in self._hashes]

    def update(self, key: int, weight: int = 1) -> None:
        buckets = self._buckets(key)
        table = self.table
        if self.conservative and weight > 0:
            current = min(table[r, b] for r, b in enumerate(buckets))
            target = current + weight
            for r, b in enumerate(buckets):
                if table[r, b] < target:
                    table[r, b] = target
        else:
            for r, b in enumerate(buckets):
                table[r, b] += weight

    def update_array(self, keys: np.ndarray,
                     weights: Optional[np.ndarray] = None) -> None:
        """Vectorised bulk update (plain, non-conservative semantics)."""
        if self.conservative:
            # Conservative update is inherently sequential; fall back.
            if weights is None:
                for k in keys.tolist():
                    self.update(int(k))
            else:
                for k, w in zip(keys.tolist(), weights.tolist()):
                    self.update(int(k), int(w))
            return
        if weights is None:
            weights = np.ones(len(keys), dtype=np.int64)
        for r, h in enumerate(self._hashes):
            buckets = (h.hash_array(keys) % np.uint64(self.width)).astype(np.intp)
            np.add.at(self.table[r], buckets, weights)

    def query(self, key: int) -> int:
        """Point estimate: min over rows (never underestimates for
        non-negative streams)."""
        return int(min(self.table[r, b]
                       for r, b in enumerate(self._buckets(key))))

    def query_many(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        estimates = np.empty((self.rows, len(keys)), dtype=np.int64)
        for r, h in enumerate(self._hashes):
            buckets = (h.hash_array(keys) % np.uint64(self.width)).astype(np.intp)
            estimates[r] = self.table[r, buckets]
        return estimates.min(axis=0)

    def l1_estimate(self) -> int:
        """Total stream weight (exact for non-negative streams: row sum)."""
        return int(self.table[0].sum())

    def _check_compatible(self, other: "CountMinSketch") -> None:
        if not isinstance(other, CountMinSketch):
            raise IncompatibleSketchError(
                f"cannot combine CountMinSketch with {type(other).__name__}")
        if (self.rows, self.width) != (other.rows, other.width):
            raise IncompatibleSketchError(
                f"geometry mismatch: {self.rows}x{self.width} vs "
                f"{other.rows}x{other.width}")
        if self.seed is None or self.seed != other.seed:
            raise IncompatibleSketchError(
                "sketches must share an explicit seed to be combined")
        if self.conservative or other.conservative:
            raise IncompatibleSketchError(
                "conservative-update sketches are not linear and cannot "
                "be merged")

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Return the sketch of the concatenated streams."""
        self._check_compatible(other)
        out = CountMinSketch.__new__(CountMinSketch)
        out.rows = self.rows
        out.width = self.width
        out.seed = self.seed
        out.conservative = False
        out.counter_bytes = self.counter_bytes
        out.table = self.table + other.table
        out._hashes = self._hashes
        return out

    def memory_bytes(self) -> int:
        return self.rows * self.width * self.counter_bytes

    def update_cost(self) -> UpdateCost:
        extra = self.rows if self.conservative else 0  # read-before-write
        return UpdateCost(hashes=self.rows,
                          counter_updates=self.rows,
                          memory_words=self.rows + extra)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CountMinSketch(rows={self.rows}, width={self.width}, "
                f"seed={self.seed}, conservative={self.conservative})")
