"""Exporters: Prometheus-style text exposition and machine-readable JSON.

``to_text`` renders the registry in the Prometheus exposition format
(``# TYPE`` / ``# HELP`` comments, ``name{labels} value`` samples,
histograms as cumulative ``_bucket{le=...}`` series plus ``_sum`` and
``_count``).  ``to_dict`` / ``to_json`` produce the equivalent
machine-readable snapshot, and ``parse_text`` reads the text form back
into exactly the ``to_dict`` structure — the round-trip contract the
property tests in ``tests/obs`` pin down.

The parser handles everything the exporter emits (simple label values
without embedded quotes or backslashes); it is a round-trip tool, not a
general Prometheus scraper.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    render_name,
)

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$")
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def _fmt(value: float) -> str:
    """Exact round-trip number rendering (ints without a trailing .0)."""
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _le_str(bound: float) -> str:
    return _fmt(bound)


# --------------------------------------------------------------------- #
# snapshot (dict / JSON)
# --------------------------------------------------------------------- #

def to_dict(registry) -> Dict[str, Dict[str, object]]:
    """Machine-readable snapshot: one entry per metric, keyed by the
    rendered ``name{labels}`` identity."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    for metric in registry.metrics():
        rendered = render_name(metric.name, metric.labels)
        if isinstance(metric, Counter):
            counters[rendered] = metric.value
        elif isinstance(metric, Gauge):
            gauges[rendered] = metric.value
        elif isinstance(metric, Histogram):
            buckets = {}
            cumulative = metric.cumulative_counts()
            for bound, count in zip(metric.bounds, cumulative):
                buckets[_le_str(bound)] = count
            buckets["+Inf"] = metric.count
            histograms[rendered] = {
                "buckets": buckets,
                "sum": metric.sum,
                "count": metric.count,
            }
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}


def to_json(registry, indent: int = 2) -> str:
    return json.dumps(to_dict(registry), indent=indent, sort_keys=True)


# --------------------------------------------------------------------- #
# text exposition
# --------------------------------------------------------------------- #

def to_text(registry) -> str:
    """Prometheus-style exposition of every metric in the registry."""
    by_family: Dict[str, List[object]] = {}
    for metric in registry.metrics():
        by_family.setdefault(metric.name, []).append(metric)
    lines: List[str] = []
    for name in sorted(by_family):
        kind = registry.kind(name)
        help_text = registry.help(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for metric in by_family[name]:
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"{render_name(name, metric.labels)} "
                             f"{_fmt(metric.value)}")
            else:  # Histogram
                cumulative = metric.cumulative_counts()
                for bound, count in zip(metric.bounds, cumulative):
                    labels = metric.labels + (("le", _le_str(bound)),)
                    lines.append(f"{render_name(name + '_bucket', labels)} "
                                 f"{count}")
                labels = metric.labels + (("le", "+Inf"),)
                lines.append(f"{render_name(name + '_bucket', labels)} "
                             f"{metric.count}")
                lines.append(f"{render_name(name + '_sum', metric.labels)} "
                             f"{_fmt(metric.sum)}")
                lines.append(f"{render_name(name + '_count', metric.labels)} "
                             f"{metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------- #
# text parsing (round trip)
# --------------------------------------------------------------------- #

def _parse_labels(raw: str) -> List[Tuple[str, str]]:
    return [(k, v) for k, v in _LABEL_PAIR_RE.findall(raw or "")]


def parse_text(text: str) -> Dict[str, Dict[str, object]]:
    """Parse ``to_text`` output back into the ``to_dict`` structure."""
    types: Dict[str, str] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, object]] = {}

    def _hist_entry(rendered: str) -> Dict[str, object]:
        return histograms.setdefault(
            rendered, {"buckets": {}, "sum": 0.0, "count": 0})

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ConfigurationError(f"unparseable exposition line {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = float(match.group("value"))

        kind = types.get(name)
        if kind == "counter":
            counters[render_name(name, tuple(labels))] = value
            continue
        if kind == "gauge":
            gauges[render_name(name, tuple(labels))] = value
            continue
        # Histogram series: name is <family>_bucket / _sum / _count.
        for suffix in ("_bucket", "_sum", "_count"):
            family = name[:-len(suffix)] if name.endswith(suffix) else None
            if family and types.get(family) == "histogram":
                base = tuple((k, v) for k, v in labels if k != "le")
                rendered = render_name(family, base)
                entry = _hist_entry(rendered)
                if suffix == "_bucket":
                    le = dict(labels).get("le")
                    if le is None:
                        raise ConfigurationError(
                            f"histogram bucket without le label: {line!r}")
                    entry["buckets"][le] = int(value)
                elif suffix == "_sum":
                    entry["sum"] = value
                else:
                    entry["count"] = int(value)
                break
        else:
            raise ConfigurationError(
                f"sample {name!r} has no preceding # TYPE line")
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}
