"""Publish a universal sketch's structural state into a registry.

The data-plane objects do not hold registry references (they must stay
picklable/serialisable and cheap to copy); instead, hot paths report
through the *global* registry at chunk granularity, and this module
snapshots the per-object state — level occupancy, heap offer/eviction
totals, counter fill — when a sealed sketch reaches the control plane.

Call :func:`observe_sketch` exactly once per sealed sketch (the
controller does this at every epoch poll): occupancy gauges describe
the latest sealed sketch, while the offer/eviction counters accumulate
across epochs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.obs.metrics import get_registry


def observe_sketch(sketch, registry: Optional[object] = None) -> None:
    """Export per-level occupancy and heap churn for a sealed sketch.

    Works on any object with a ``levels`` list of
    :class:`~repro.core.level.SketchLevel`; silently does nothing for
    other sketch types (the generic ingest paths accept any sketch).
    """
    reg = registry if registry is not None else get_registry()
    if not reg.enabled:
        return
    levels = getattr(sketch, "levels", None)
    if not levels:
        return
    for j, level in enumerate(levels):
        lab = {"level": str(j)}
        reg.gauge("univmon_level_heap_occupancy",
                  help="keys tracked in the level's Q_j heap",
                  **lab).set(len(level.topk))
        reg.gauge("univmon_level_packets",
                  help="substream packets folded into the level",
                  **lab).set(level.packets)
        table = level.sketch.table
        reg.gauge("univmon_level_counter_fill_ratio",
                  help="fraction of nonzero Count Sketch counters",
                  **lab).set(np.count_nonzero(table) / table.size)
        topk = level.topk
        reg.counter("univmon_topk_offers_total",
                    help="keys offered to the level's heap",
                    **lab).inc(topk.offers)
        reg.counter("univmon_topk_evictions_total",
                    help="tracked keys evicted from the level's heap",
                    **lab).inc(topk.evictions)
        reg.counter("univmon_topk_rejections_total",
                    help="offered keys that never displaced a tracked one",
                    **lab).inc(topk.rejections)
