"""Metric primitives and the registry that owns them.

Three metric types, mirroring the Prometheus data model (the de-facto
exposition format for network monitoring systems):

- :class:`Counter` — monotonically non-decreasing total (offers,
  evictions, packets ingested);
- :class:`Gauge` — a value that can go anywhere (heap occupancy,
  packets/sec of the last run);
- :class:`Histogram` — fixed upper-bound buckets plus sum/count
  (update/query/merge latencies).  Bucket bounds are fixed at creation,
  so two registries with the same metric merge bucket-by-bucket.

A metric is identified by ``(family name, label set)``; the registry
get-or-creates on access, so instrumentation points never need to check
whether a metric exists.  :class:`NullRegistry` implements the same
surface with shared no-op metric objects — the global default, keeping
uninstrumented deployments at zero cost.
"""

from __future__ import annotations

import bisect
import re
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.timing import NULL_SPAN, Span

#: Default histogram bounds (seconds): spans from 10 microseconds to
#: 10 seconds, log-spaced — wide enough for a chunk update and an epoch
#: merge alike.  The overflow (+inf) bucket is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, str]) -> LabelSet:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ConfigurationError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def render_name(name: str, labels: LabelSet) -> str:
    """``name{k="v",...}`` — the exposition identity of one metric."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically non-decreasing total.

    Mutations are lock-protected: ``_value += amount`` is a
    read-modify-write across several bytecodes, so unsynchronised
    increments from concurrent scrape/serve threads lose updates.
    """

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value (may move in either direction)."""

    __slots__ = ("name", "labels", "_value", "touched", "_lock")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self.touched = False
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self.touched = True

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount
            self.touched = True

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram: counts per upper bound, plus sum/count.

    ``bounds`` are the *finite* inclusive upper bounds, strictly
    ascending; an overflow bucket (conceptually ``+Inf``) is always
    present, so every observation lands in exactly one bucket and the
    bucket counts conserve the observation count.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "_sum",
                 "_count", "_lock")

    def __init__(self, name: str, labels: LabelSet = (),
                 bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ConfigurationError(
                f"histogram {name!r} needs at least one bucket bound")
        if any(b != b or b in (float("inf"), float("-inf")) for b in bounds):
            raise ConfigurationError(
                f"histogram {name!r} bounds must be finite (got {bounds})")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} bounds must be strictly ascending "
                f"(got {bounds})")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        bucket = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[bucket] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def cumulative_counts(self) -> List[int]:
        """Per-bound cumulative counts, Prometheus ``le`` style; the last
        entry (the ``+Inf`` bucket) always equals :attr:`count`."""
        with self._lock:      # consistent snapshot vs a mid-observe writer
            counts = list(self.bucket_counts)
        total, out = 0, []
        for c in counts:
            total += c
            out.append(total)
        return out


class MetricsRegistry:
    """Get-or-create store for all of a process's metrics.

    Parameters
    ----------
    clock:
        The time source handed to every :meth:`span`; injectable so
        latency tests are deterministic.
    """

    enabled = True

    def __init__(self,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._metrics: Dict[Tuple[str, LabelSet], object] = {}
        self._types: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._bounds: Dict[str, Tuple[float, ...]] = {}
        # Guards family registration and metric creation: concurrent
        # get-or-create from serving/scrape/ingest threads must never
        # hand two callers distinct metric objects for one identity.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # metric access
    # ------------------------------------------------------------------ #

    def _family(self, name: str, kind: str, help: str) -> None:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        existing = self._types.get(name)
        if existing is None:
            self._types[name] = kind
            self._help[name] = help
        elif existing != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as {existing}, "
                f"cannot re-register as {kind}")
        elif help and not self._help[name]:
            self._help[name] = help

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        key = (name, _labelset(labels))
        metric = self._metrics.get(key)    # lock-free fast path
        if type(metric) is not Counter:
            with self._lock:
                self._family(name, "counter", help)
                metric = self._metrics.get(key)
                if metric is None:
                    metric = self._metrics[key] = Counter(name, key[1])
        return metric  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        key = (name, _labelset(labels))
        metric = self._metrics.get(key)
        if type(metric) is not Gauge:
            with self._lock:
                self._family(name, "gauge", help)
                metric = self._metrics.get(key)
                if metric is None:
                    metric = self._metrics[key] = Gauge(name, key[1])
        return metric  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  **labels: str) -> Histogram:
        key = (name, _labelset(labels))
        metric = self._metrics.get(key)    # lock-free fast path: an
        # existing metric whose bounds already match never needs the
        # lock — callers that pass ``buckets`` on every observation
        # (the per-request serving path does) must not serialize
        # against the ingest thread here.
        if type(metric) is Histogram and (
                buckets is None
                or metric.bounds == tuple(float(b) for b in buckets)):
            return metric  # type: ignore[return-value]
        with self._lock:
            self._family(name, "histogram", help)
            bounds = tuple(float(b) for b in buckets) \
                if buckets is not None \
                else self._bounds.get(name, DEFAULT_LATENCY_BUCKETS)
            registered = self._bounds.setdefault(name, bounds)
            if bounds != registered:
                raise ConfigurationError(
                    f"histogram {name!r} already registered with buckets "
                    f"{registered}, cannot change to {bounds}")
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = Histogram(name, key[1],
                                                        bounds=registered)
        return metric  # type: ignore[return-value]

    def span(self, name: str, help: str = "",
             buckets: Optional[Sequence[float]] = None,
             **labels: str) -> Span:
        """A timer recording into the named latency histogram."""
        return Span(self.histogram(name, help=help, buckets=buckets,
                                   **labels), clock=self._clock)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def kind(self, name: str) -> Optional[str]:
        return self._types.get(name)

    def help(self, name: str) -> str:
        return self._help.get(name, "")

    def metrics(self) -> Iterator[object]:
        """All metric objects, family-sorted then label-sorted."""
        with self._lock:   # stable snapshot vs concurrent creation
            snapshot = sorted(self._metrics.items())
        for _key, metric in snapshot:
            yield metric

    def families(self) -> List[str]:
        return sorted(self._types)

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, **labels: str) -> Optional[object]:
        """The metric at ``(name, labels)``, or None (no creation)."""
        return self._metrics.get((name, _labelset(labels)))

    def clear_family(self, name: str) -> int:
        """Drop every metric of family ``name`` (all label sets).

        The family's type/help registration survives, so the series can
        be re-created with the same kind.  Used by instrumentation whose
        label space shrinks between runs (e.g. per-shard series after a
        narrower worker sweep) — without this, stale series would keep
        exporting their last values forever.  Returns the number of
        metrics removed.
        """
        with self._lock:
            doomed = [key for key in self._metrics if key[0] == name]
            for key in doomed:
                del self._metrics[key]
        return len(doomed)

    # ------------------------------------------------------------------ #
    # merge
    # ------------------------------------------------------------------ #

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """A new registry equal to observing both input streams.

        Counters and histograms add (histograms must share bucket
        bounds); for gauges the *other* side wins when it has been
        written — merge order is observation order, so ``a.merge(b)``
        models "everything in ``a`` happened, then everything in ``b``".
        """
        out = MetricsRegistry(clock=self._clock)
        for source in (self, other):
            with source._lock:
                items = sorted(source._metrics.items())
            for (name, labels), metric in items:
                kwargs = dict(metric.labels)
                if isinstance(metric, Counter):
                    out.counter(name, help=source.help(name),
                                **kwargs).inc(metric.value)
                elif isinstance(metric, Gauge):
                    if metric.touched:
                        out.gauge(name, help=source.help(name),
                                  **kwargs).set(metric.value)
                    else:
                        out.gauge(name, help=source.help(name), **kwargs)
                elif isinstance(metric, Histogram):
                    target = out.histogram(name, help=source.help(name),
                                           buckets=metric.bounds, **kwargs)
                    for i, c in enumerate(metric.bucket_counts):
                        target.bucket_counts[i] += c
                    target._sum += metric.sum
                    target._count += metric.count
        return out


# --------------------------------------------------------------------- #
# the no-op default
# --------------------------------------------------------------------- #

class _NullCounter:
    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0.0
    touched = False

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    sum = 0.0
    count = 0

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Same surface as :class:`MetricsRegistry`; every operation is a
    no-op on a shared singleton — no allocation, no clock reads, no
    dictionary lookups on the hot path."""

    enabled = False

    def counter(self, name: str, help: str = "", **labels: str):
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "", **labels: str):
        return _NULL_GAUGE

    def histogram(self, name: str, help: str = "", buckets=None,
                  **labels: str):
        return _NULL_HISTOGRAM

    def span(self, name: str, help: str = "", buckets=None, **labels: str):
        return NULL_SPAN

    def metrics(self) -> Iterator[object]:
        return iter(())

    def families(self) -> List[str]:
        return []

    def kind(self, name: str) -> Optional[str]:
        return None

    def help(self, name: str) -> str:
        return ""

    def get(self, name: str, **labels: str) -> Optional[object]:
        return None

    def clear_family(self, name: str) -> int:
        return 0

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()

_global_registry = NULL_REGISTRY


def get_registry():
    """The process-global registry (the no-op registry by default)."""
    return _global_registry


def set_registry(registry):
    """Install ``registry`` globally; returns the previous one."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous


@contextmanager
def use_registry(registry):
    """Scope the global registry to a ``with`` block."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
