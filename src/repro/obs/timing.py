"""Timer spans: measure a ``with`` block into a latency histogram.

The clock is injectable (the registry owns it), so latency tests drive
a fake clock and assert exact bucket placement.  :data:`NULL_SPAN` is
the shared no-op the :class:`~repro.obs.metrics.NullRegistry` hands
out — it never reads the clock, so an instrumented-but-disabled hot
path pays only the context-manager protocol.
"""

from __future__ import annotations

import time
from typing import Callable


class Span:
    """Context manager recording the block's wall time into a histogram.

    The measured duration is also kept on :attr:`elapsed` so callers
    that want to both export and report (e.g. an ingest driver printing
    packets/sec) measure once.
    """

    __slots__ = ("_histogram", "_clock", "_start", "elapsed")

    def __init__(self, histogram,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self._histogram = histogram
        self._clock = clock
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Span":
        self._start = self._clock()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = self._clock() - self._start
        self._histogram.observe(self.elapsed)


class NullSpan:
    """No-op span: no clock reads, nothing recorded."""

    __slots__ = ()
    elapsed = 0.0

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = NullSpan()
