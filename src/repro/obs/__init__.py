"""Observability: a zero-dependency metrics subsystem for the sketch stack.

UnivMon's pitch is "one sketch, many late-bound estimates" — but a
deployed sketch lives or dies by runtime introspection: level occupancy,
heap evictions, per-epoch merge coverage, ingest throughput.  This
package provides the plumbing:

- :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms, keyed by Prometheus-style names and label sets;
- :class:`~repro.obs.timing.Span` — a timer context manager backed by an
  injectable clock, recording into a latency histogram;
- exporters (:mod:`repro.obs.export`) — Prometheus-style text exposition
  and a machine-readable JSON dump, with a text parser for round trips;
- :func:`observe_sketch` — publishes a sealed universal sketch's
  structural state (per-level occupancy, heap offer/eviction counts).

The *global* registry defaults to :data:`NULL_REGISTRY`, whose metric
objects are shared no-ops: instrumented hot paths cost a handful of
no-op calls per *chunk* (never per packet), so the default configuration
stays within noise of uninstrumented code — guarded by the
overhead-guard test in ``tests/acceptance/test_overhead.py``.  Install a
real registry with :func:`set_registry` or scope one with
:func:`use_registry`.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.timing import NULL_SPAN, NullSpan, Span
from repro.obs.export import parse_text, to_dict, to_json, to_text
from repro.obs.instrument import observe_sketch

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NullRegistry",
    "NullSpan",
    "Span",
    "get_registry",
    "observe_sketch",
    "parse_text",
    "set_registry",
    "to_dict",
    "to_json",
    "to_text",
    "use_registry",
]
