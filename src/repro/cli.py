"""Command-line interface: ``univmon <subcommand>``.

Subcommands
-----------
- ``generate`` — write a synthetic trace (CSV or pcap); ``--scenario``
  writes a scenario from the workload library instead.
- ``run`` — monitor a trace with the UnivMon controller and print
  per-epoch reports for the selected tasks.  ``--scenario NAME`` runs a
  library scenario (DDoS ramp, flash crowd, port scan, heavy churn,
  key-space shift, websearch/data-mining mixes) instead of a trace file;
  ``--scenario help`` lists them.
- ``experiment`` — regenerate one of the paper's figures/tables
  (fig4 | fig5 | fig6 | fig7 | overhead | ablation-levels |
  ablation-heap) as a text table (``--plot`` adds an ASCII chart).
- ``agent`` — run a switch agent: replay a trace through a monitored
  switch and serve its sketches over TCP (Figure 2's data plane).
- ``poll`` — poll a running agent once and print the estimates
  (Figure 2's control plane).
- ``coordinate`` — fault-tolerant epoch loop over several running
  agents: retries with backoff, auto-marks unreachable switches failed,
  probes them back, and prints per-epoch coverage.
- ``metrics`` — run a (synthetic or given) trace through the fully
  instrumented stack and export the metrics registry as Prometheus-style
  text or JSON.  ``run`` and ``coordinate`` also take
  ``--metrics-json PATH`` to dump a registry snapshot after the run.
- ``query`` — evaluate an arbitrary batch of statistics
  (``hh:0.005,entropy,moment:1.5,...``) against one sealed sketch — from
  a local trace or polled off a running agent — in a single snapshot
  pass through the vectorised query engine.
- ``detect`` — run the programmable detection pipeline over a trace or
  library scenario: declarative rules (built-in set, or a TOML/JSON spec
  via ``--rules``) evaluated per sealed epoch, with per-rule state
  machines and zoom/key-recovery actions; ``--json`` emits the
  structured detection events.
- ``serve`` — the always-on monitoring service: cycle a trace (or
  scenario) through the epoch pipeline forever, sealing on a wall-clock
  timer, and serve ``/query``, ``/epochs``, ``/events`` (SSE),
  ``/metrics`` and ``/healthz`` over HTTP while ingest keeps running.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__


def _add_generate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("generate", help="generate a synthetic trace")
    p.add_argument("--out", required=True, help="output path (.csv or .pcap)")
    p.add_argument("--scenario", default=None, metavar="NAME",
                   help="generate a named workload scenario instead of "
                        "the plain Zipf trace (see `univmon run "
                        "--scenario help` for the list)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="scenario size multiplier (with --scenario)")
    p.add_argument("--packets", type=int, default=100_000)
    p.add_argument("--flows", type=int, default=10_000)
    p.add_argument("--skew", type=float, default=1.1,
                   help="Zipf exponent of flow sizes")
    p.add_argument("--duration", type=float, default=60.0,
                   help="trace length in seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--ddos-at", type=float, default=None, metavar="T",
                   help="inject a DDoS burst starting at T seconds")
    p.add_argument("--ddos-sources", type=int, default=5000)


def _add_run(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("run", help="monitor a trace with UnivMon")
    p.add_argument("--trace", default=None,
                   help="input .csv or .pcap trace (or use --scenario)")
    p.add_argument("--scenario", default=None, metavar="NAME",
                   help="monitor a named workload scenario from the "
                        "scenario library instead of a trace file "
                        "(`--scenario help` lists the scenarios)")
    p.add_argument("--seed", type=int, default=0,
                   help="scenario seed (with --scenario)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="scenario size multiplier (with --scenario)")
    p.add_argument("--epoch", type=float, default=5.0,
                   help="polling interval in seconds")
    p.add_argument("--tasks", default="hh,ddos,change,entropy",
                   help="comma list of hh,ddos,change,entropy,cardinality")
    p.add_argument("--alpha", type=float, default=0.005,
                   help="heavy hitter threshold fraction")
    p.add_argument("--ddos-k", type=int, default=5000,
                   help="DDoS distinct-source threshold")
    p.add_argument("--phi", type=float, default=0.05,
                   help="heavy change threshold fraction")
    p.add_argument("--memory-kb", type=int, default=512,
                   help="sketch memory budget per epoch")
    p.add_argument("--key", default="src_ip",
                   choices=["src_ip", "dst_ip", "src_dst", "five_tuple"])
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="shard each epoch's ingest across N worker "
                        "processes (sketch linearity keeps the merge "
                        "exact; 1 = in-process)")
    p.add_argument("--metrics-json", default=None, metavar="PATH",
                   help="collect metrics during the run and write a JSON "
                        "registry snapshot to PATH")


def _add_metrics(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "metrics",
        help="run an instrumented workload and export the metrics registry")
    p.add_argument("--trace", default=None,
                   help="input .csv or .pcap trace (default: a seeded "
                        "synthetic Zipf trace)")
    p.add_argument("--packets", type=int, default=20_000,
                   help="synthetic trace size (ignored with --trace)")
    p.add_argument("--flows", type=int, default=3_000)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--duration", type=float, default=10.0)
    p.add_argument("--epoch", type=float, default=5.0)
    p.add_argument("--memory-kb", type=int, default=256)
    p.add_argument("--key", default="src_ip",
                   choices=["src_ip", "dst_ip", "src_dst", "five_tuple"])
    p.add_argument("--format", default="text", choices=["text", "json"],
                   help="exposition format (Prometheus-style text or JSON)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the export to PATH instead of stdout")


def _add_experiment(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("experiment",
                       help="regenerate a figure/table from the paper")
    p.add_argument("name", choices=["fig4", "fig5", "fig6", "fig7",
                                    "overhead", "ablation-levels",
                                    "ablation-heap"])
    p.add_argument("--runs", type=int, default=20,
                   help="independent runs per point (paper: 20)")
    p.add_argument("--quick", action="store_true",
                   help="small workload + 5 runs, for a fast look")
    p.add_argument("--plot", action="store_true",
                   help="render the series as an ASCII chart too")


def _add_agent(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("agent", help="serve a switch's sketches over TCP")
    p.add_argument("--trace", required=True, help="trace to replay")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9099)
    p.add_argument("--epoch", type=float, default=5.0,
                   help="replay pacing: seconds of trace fed per epoch")
    p.add_argument("--memory-kb", type=int, default=512)
    p.add_argument("--speedup", type=float, default=0.0,
                   help="replay pacing: 1 = capture rate, 10 = 10x "
                        "faster, 0 = as fast as possible (default)")


def _add_retry_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--retries", type=int, default=4,
                   help="attempts per call (1 = fail fast)")
    p.add_argument("--retry-delay", type=float, default=0.05,
                   help="base backoff in seconds (doubles per retry)")
    p.add_argument("--retry-seed", type=int, default=0,
                   help="seed for deterministic backoff jitter")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="per-connection socket timeout in seconds")


def _add_poll(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("poll", help="poll a running agent once")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9099)
    p.add_argument("--program", default="univmon")
    p.add_argument("--alpha", type=float, default=0.005)
    _add_retry_options(p)


def _add_coordinate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "coordinate",
        help="fault-tolerant epoch loop over several running agents")
    p.add_argument("--agent", action="append", required=True,
                   dest="agents", metavar="NAME=HOST:PORT",
                   help="a switch agent to poll (repeatable)")
    p.add_argument("--program", default="univmon")
    p.add_argument("--epochs", type=int, default=0,
                   help="epochs to run (0 = until interrupted)")
    p.add_argument("--epoch", type=float, default=5.0,
                   help="seconds between polls")
    p.add_argument("--memory-kb", type=int, default=512,
                   help="sketch geometry (must match the agents')")
    p.add_argument("--alpha", type=float, default=0.005)
    p.add_argument("--fail-after", type=int, default=2,
                   help="consecutive failures before a switch is FAILED")
    p.add_argument("--probe-every", type=int, default=1,
                   help="probe FAILED switches every N epochs")
    p.add_argument("--topology", choices=["flat", "tree"], default="flat",
                   help="flat fan-in (default) or a rack/pod/root "
                        "aggregation tree with re-parenting")
    p.add_argument("--fanout", type=int, default=8,
                   help="children per tree aggregator (tree topology)")
    p.add_argument("--transfer", choices=["raw", "delta"], default="raw",
                   help="full-sketch polls or delta-compressed frames")
    p.add_argument("--min-coverage", type=float, default=0.0,
                   help="fraction of switches an epoch must represent")
    p.add_argument("--quorum", type=float, default=0.0,
                   help="fraction of root subtrees that must contribute")
    p.add_argument("--fail-mode", choices=["open", "closed"],
                   default="open",
                   help="publish (open) or withhold (closed) epochs "
                        "violating --min-coverage/--quorum")
    p.add_argument("--metrics-json", default=None, metavar="PATH",
                   help="collect metrics during the run and write a JSON "
                        "registry snapshot to PATH")
    _add_retry_options(p)


def _add_query(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "query",
        help="evaluate a batch of statistics against one sealed sketch")
    p.add_argument("--stats", default="hh,cardinality,l1,entropy,f2",
                   help="comma list of name[:param] specs: hh[:frac], "
                        "cardinality|f0, l1, l2, f2, entropy[:base|e], "
                        "moment:p")
    p.add_argument("--trace", default=None,
                   help="build the sketch locally from this .csv/.pcap "
                        "trace (mutually exclusive with --host)")
    p.add_argument("--host", default=None,
                   help="poll a running switch agent instead")
    p.add_argument("--port", type=int, default=9099)
    p.add_argument("--program", default="univmon")
    p.add_argument("--memory-kb", type=int, default=512,
                   help="sketch memory budget (local --trace mode)")
    p.add_argument("--key", default="src_ip",
                   choices=["src_ip", "dst_ip", "src_dst", "five_tuple"])
    p.add_argument("--json", action="store_true",
                   help="print results as a JSON object")
    _add_retry_options(p)


def _add_detect(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "detect",
        help="run the programmable detection pipeline over a trace")
    p.add_argument("--trace", default=None,
                   help="input .csv or .pcap trace (or use --scenario)")
    p.add_argument("--scenario", default=None, metavar="NAME",
                   help="run a named workload scenario instead of a "
                        "trace file (`--scenario help` lists them)")
    p.add_argument("--seed", type=int, default=0,
                   help="scenario seed (with --scenario)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="scenario size multiplier (with --scenario)")
    p.add_argument("--rules", default=None, metavar="PATH",
                   help="rule spec (.toml or .json with a [[rules]] "
                        "list); default: the built-in rule set")
    p.add_argument("--epoch", type=float, default=5.0,
                   help="polling interval in seconds")
    p.add_argument("--memory-kb", type=int, default=256,
                   help="sketch memory budget per epoch")
    p.add_argument("--key", default="src_ip",
                   choices=["src_ip", "dst_ip", "src_dst", "five_tuple"])
    p.add_argument("--recover-fraction", type=float, default=0.08,
                   help="key-recovery threshold as a share of epoch "
                        "packets")
    p.add_argument("--json", action="store_true",
                   help="print the run as one JSON object (per-epoch "
                        "states + structured detection events)")
    p.add_argument("--metrics-json", default=None, metavar="PATH",
                   help="collect metrics during the run and write a JSON "
                        "registry snapshot to PATH")


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve",
        help="run the always-on monitoring service over HTTP")
    p.add_argument("--trace", default=None,
                   help="trace to cycle through the service (or use "
                        "--scenario)")
    p.add_argument("--scenario", default=None, metavar="NAME",
                   help="cycle a named workload scenario instead of a "
                        "trace file (`--scenario help` lists them)")
    p.add_argument("--seed", type=int, default=0,
                   help="scenario seed (with --scenario)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="scenario size multiplier (with --scenario)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9600,
                   help="HTTP port (0 = pick an ephemeral port)")
    p.add_argument("--epoch", type=float, default=1.0,
                   help="wall-clock sealing interval in seconds")
    p.add_argument("--epochs", type=int, default=0, metavar="N",
                   help="seal N epochs then exit (0 = run until "
                        "interrupted)")
    p.add_argument("--ring", type=int, default=8, metavar="DEPTH",
                   help="published epochs kept for /epochs and /query")
    p.add_argument("--memo", type=int, default=128, metavar="ENTRIES",
                   help="query-result memo capacity")
    p.add_argument("--memory-kb", type=int, default=512,
                   help="sketch memory budget per epoch")
    p.add_argument("--key", default="src_ip",
                   choices=["src_ip", "dst_ip", "src_dst", "five_tuple"])
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="shard ingest across N worker processes")
    p.add_argument("--chunk-size", type=int, default=4096,
                   help="packets per ingest chunk")
    p.add_argument("--pace", type=float, default=0.0, metavar="SECONDS",
                   help="sleep between chunks (0 = ingest at max rate)")
    p.add_argument("--detect", action="store_true",
                   help="run the detection pipeline (built-in rules) "
                        "and stream its events over /events")
    p.add_argument("--rules", default=None, metavar="PATH",
                   help="detection rule spec (.toml/.json); implies "
                        "--detect")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="univmon",
        description="UnivMon universal-streaming monitoring (HotNets'15 "
                    "reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"univmon {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)
    _add_generate(sub)
    _add_run(sub)
    _add_experiment(sub)
    _add_agent(sub)
    _add_poll(sub)
    _add_coordinate(sub)
    _add_metrics(sub)
    _add_query(sub)
    _add_detect(sub)
    _add_serve(sub)
    return parser


# --------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------- #

def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.dataplane.csvtrace import save_csv
    from repro.dataplane.pcap import save_pcap
    from repro.dataplane.trace import (DDoSEvent, SyntheticTraceConfig,
                                       generate_trace)

    if args.scenario is not None:
        scenario, code = _scenario_or_exit_code(args.scenario, args.seed,
                                                args.scale)
        if scenario is None:
            return code
        trace = scenario.trace
    else:
        events = ()
        if args.ddos_at is not None:
            events = (DDoSEvent(start=args.ddos_at,
                                end=min(args.ddos_at + 5.0, args.duration),
                                num_sources=args.ddos_sources),)
        config = SyntheticTraceConfig(
            packets=args.packets, flows=args.flows, zipf_skew=args.skew,
            duration=args.duration, seed=args.seed, ddos_events=events)
        trace = generate_trace(config)
    if args.out.endswith(".pcap"):
        save_pcap(trace, args.out)
    else:
        save_csv(trace, args.out)
    print(f"wrote {len(trace)} packets ({trace.duration:.1f}s) to {args.out}")
    return 0


def _load_trace(path: str):
    from repro.dataplane.csvtrace import load_csv
    from repro.dataplane.pcap import load_pcap
    if path.endswith(".pcap"):
        return load_pcap(path)
    return load_csv(path)


def _scenario_or_exit_code(name: str, seed: int, scale: float):
    """Build a library scenario; returns ``(scenario, exit_code)`` where
    the scenario is None for ``help`` listings (code 0) and unknown
    names (code 2)."""
    from repro.errors import ConfigurationError
    from repro.dataplane.scenarios import SCENARIOS, make_scenario

    if name in ("help", "list"):
        for spec in sorted(SCENARIOS.values(), key=lambda s: s.name):
            print(f"  {spec.name:16s} {spec.description}")
        return None, 0
    try:
        return make_scenario(name, seed=seed, scale=scale), 0
    except ConfigurationError as exc:
        print(f"{exc}", file=sys.stderr)
        return None, 2


def _with_metrics_json(path: Optional[str], command) -> int:
    """Run ``command()`` under a fresh global registry, dumping JSON.

    With no path the command runs against whatever registry is already
    installed (the no-op default: zero instrumentation cost).
    """
    if path is None:
        return command()
    from repro.obs import MetricsRegistry, to_json, use_registry
    with use_registry(MetricsRegistry()) as registry:
        code = command()
        with open(path, "w") as out:
            out.write(to_json(registry))
    print(f"wrote metrics snapshot to {path}")
    return code


def _cmd_run(args: argparse.Namespace) -> int:
    return _with_metrics_json(args.metrics_json, lambda: _run_monitor(args))


def _run_monitor(args: argparse.Namespace) -> int:
    from repro.controlplane import (CardinalityApp, ChangeDetectionApp,
                                    Controller, DDoSApp, EntropyApp,
                                    HeavyHitterApp)
    from repro.dataplane.keys import KEY_FUNCTIONS
    from repro.core.universal import UniversalSketch

    if (args.trace is None) == (args.scenario is None):
        print("run needs exactly one input: --trace PATH or "
              "--scenario NAME", file=sys.stderr)
        return 2
    if args.scenario is not None:
        scenario, code = _scenario_or_exit_code(args.scenario, args.seed,
                                                args.scale)
        if scenario is None:
            return code
        trace = scenario.trace
        print(f"scenario {scenario.name!r} (seed {scenario.seed}): "
              f"{len(trace)} packets over {scenario.n_epochs} "
              f"{scenario.epoch_seconds:.0f}s epochs — "
              f"{scenario.description}")
    else:
        trace = _load_trace(args.trace)
    key_function = KEY_FUNCTIONS[args.key]
    budget = args.memory_kb * 1024
    factory = lambda: UniversalSketch.for_memory_budget(  # noqa: E731
        budget, levels=12, rows=5, heap_size=64, seed=1)
    controller = Controller(sketch_factory=factory,
                            key_function=key_function,
                            epoch_seconds=args.epoch,
                            workers=args.workers)
    tasks = [t.strip() for t in args.tasks.split(",") if t.strip()]
    for task in tasks:
        if task == "hh":
            controller.register(HeavyHitterApp(alpha=args.alpha))
        elif task == "ddos":
            controller.register(DDoSApp(threshold_k=args.ddos_k))
        elif task == "change":
            controller.register(ChangeDetectionApp(phi=args.phi))
        elif task == "entropy":
            controller.register(EntropyApp())
        elif task == "cardinality":
            controller.register(CardinalityApp())
        else:
            print(f"unknown task {task!r}", file=sys.stderr)
            return 2

    show_ip = key_function.reversible and args.key in ("src_ip", "dst_ip")
    try:
        _print_reports(controller.run_trace(trace), show_ip)
    finally:
        controller.close()  # release the shard worker pool, if any
    return 0


def _print_reports(reports, show_ip: bool) -> None:
    from repro.dataplane.packet import format_ipv4
    for report in reports:
        print(f"epoch {report.epoch_index} "
              f"[{report.start_time:.1f}s, {report.end_time:.1f}s] "
              f"{report.packets} pkts")
        for name, result in report.results.items():
            if name == "heavy_hitters":
                rendered = ", ".join(
                    (format_ipv4(k) if show_ip else str(k))
                    + f"={w:.0f}" for k, w in result["hitters"][:8])
                print(f"  heavy_hitters(alpha={result['alpha']}): "
                      f"{rendered or '(none)'}")
            elif name == "ddos":
                print(f"  ddos: distinct={result['distinct_sources']:.0f} "
                      f"k={result['threshold_k']} "
                      f"victim={result['victim']}")
            elif name == "change":
                rendered = ", ".join(
                    (format_ipv4(k) if show_ip else str(k))
                    + f"={w:+.0f}" for k, w in result["changes"][:8])
                print(f"  change(phi={result.get('phi', '-')}): "
                      f"D={result['total_change']:.0f} "
                      f"{rendered or '(none)'}")
            elif name == "entropy":
                print(f"  entropy: {result['entropy']:.3f} bits")
            elif name == "cardinality":
                print(f"  cardinality: {result['distinct']:.0f}")


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.eval import experiments as exp
    from repro.eval.asciichart import chart_sweep
    from repro.eval.runner import format_table

    runs = 5 if args.quick else args.runs
    workload = exp.WorkloadSpec(packets=10_000, flows=2_000) if args.quick \
        else exp.DEFAULT_WORKLOAD
    memory = (32, 128, 1024) if args.quick else exp.DEFAULT_MEMORY_KB

    def emit(points, metrics, title, x_label="memory_kb", log_x=True):
        print(format_table(points, metrics, x_label=x_label, title=title))
        if args.plot:
            print()
            print(chart_sweep(points, metrics, x_label=x_label,
                              title=title, log_x=log_x))

    if args.name == "fig4":
        points = exp.fig4_heavy_hitters(memory, runs=runs, workload=workload)
        emit(points, ["univmon_fp", "univmon_fn",
                      "opensketch_fp", "opensketch_fn"],
             "Figure 4 — heavy hitters (alpha=0.5%)")
    elif args.name == "fig5":
        points = exp.fig5_ddos(memory, runs=runs, workload=workload)
        emit(points, ["univmon_err", "opensketch_err",
                      "univmon_detect_err", "opensketch_detect_err"],
             "Figure 5 — DDoS (distinct sources)")
    elif args.name == "fig6":
        points = exp.fig6_change_detection(memory, runs=runs,
                                           workload=workload)
        emit(points, ["univmon_fp", "univmon_fn",
                      "opensketch_fp", "opensketch_fn"],
             "Figure 6 — change detection")
    elif args.name == "fig7":
        points = exp.fig7_entropy(memory, runs=runs, workload=workload)
        emit(points, ["univmon_err", "sampling_err"],
             "Figure 7 — entropy estimation")
    elif args.name == "overhead":
        result = exp.overhead_cycles(workload=workload,
                                     epochs=3 if args.quick else 12)
        print("Overhead (modelled cycles, Intel-PCM substitute)")
        print(f"  packets processed:        {result.packets}")
        print(f"  UnivMon (all tasks):      {result.univmon_cycles:.3e}")
        print(f"  OpenSketch suite:         "
              f"{result.opensketch_suite_cycles:.3e}")
        for task, cycles in result.opensketch_per_task_cycles.items():
            print(f"    {task:8s}                {cycles:.3e}")
        print(f"  ratio (UnivMon/suite):    {result.ratio:.2f} "
              f"(paper: 1.407e9/2.941e9 = 0.48)")
    elif args.name == "ablation-levels":
        points = exp.ablation_levels(runs=runs, workload=workload)
        emit(points, ["f0_err", "entropy_err"],
             "Ablation — sampling levels", x_label="levels", log_x=False)
    elif args.name == "ablation-heap":
        points = exp.ablation_heap_size(runs=runs, workload=workload)
        emit(points, ["f0_err", "entropy_err"],
             "Ablation — per-level top-k size", x_label="heap_size",
             log_x=False)
    return 0


def _cmd_agent(args: argparse.Namespace) -> int:
    import time

    from repro.controlplane.rpc import SwitchAgent
    from repro.dataplane.keys import src_ip_key
    from repro.dataplane.switch import MonitoredSwitch
    from repro.core.universal import UniversalSketch

    trace = _load_trace(args.trace)
    budget = args.memory_kb * 1024
    switch = MonitoredSwitch("agent")
    switch.attach(
        "univmon",
        lambda: UniversalSketch.for_memory_budget(
            budget, levels=12, rows=5, heap_size=64, seed=1),
        src_ip_key)
    agent = SwitchAgent(switch, host=args.host, port=args.port).start()
    host, port = agent.address
    print(f"switch agent on {host}:{port}; replaying "
          f"{len(trace)} packets in {args.epoch:.0f}s epochs "
          f"(poll with: univmon poll --host {host} --port {port})")
    try:
        from repro.dataplane.replay import TraceReplayer
        replayer = TraceReplayer(trace, speedup=args.speedup,
                                 chunk_seconds=args.epoch)

        def feed(chunk):
            switch.process_trace(chunk)
            print(f"  fed {len(chunk)} packets "
                  f"(total {switch.packets_seen})")

        replayer.run(feed)
        if replayer.max_lag > 0:
            print(f"  (replay lagged the schedule by up to "
                  f"{replayer.max_lag:.2f}s)")
        print("trace exhausted; serving until interrupted (ctrl-c)")
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        agent.stop()
    return 0


def _retry_policy(args: argparse.Namespace):
    from repro.controlplane.rpc import RetryPolicy
    return RetryPolicy(max_attempts=args.retries,
                       base_delay=args.retry_delay, seed=args.retry_seed)


def _cmd_poll(args: argparse.Namespace) -> int:
    from repro.controlplane.rpc import RemoteSwitchClient
    from repro.core.gsum import estimate_cardinality, estimate_entropy, g_core
    from repro.dataplane.packet import format_ipv4

    with RemoteSwitchClient(args.host, args.port, timeout=args.timeout,
                            retry=_retry_policy(args)) as client:
        stats = client.stats()
        sketch = client.poll(args.program)
    print(f"agent stats: {stats}")
    print(f"sealed epoch: {sketch.total_weight} packets, "
          f"{sketch.memory_bytes() / 1024:.0f} KB sketch")
    print(f"  distinct sources : {estimate_cardinality(sketch):.0f}")
    print(f"  entropy          : {estimate_entropy(sketch):.3f} bits")
    hitters = g_core(sketch, args.alpha)
    rendered = ", ".join(f"{format_ipv4(int(k))}={w:.0f}"
                         for k, w in hitters[:8])
    print(f"  heavy hitters    : {rendered or '(none)'}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import MetricsRegistry, to_json, to_text, use_registry
    from repro.controlplane import (CardinalityApp, EntropyApp,
                                    HeavyHitterApp)
    from repro.controlplane.controller import Controller
    from repro.dataplane.keys import KEY_FUNCTIONS
    from repro.dataplane.trace import SyntheticTraceConfig, generate_trace
    from repro.core.universal import UniversalSketch

    if args.trace is not None:
        trace = _load_trace(args.trace)
    else:
        trace = generate_trace(SyntheticTraceConfig(
            packets=args.packets, flows=args.flows, duration=args.duration,
            seed=args.seed))
    budget = args.memory_kb * 1024
    factory = lambda: UniversalSketch.for_memory_budget(  # noqa: E731
        budget, levels=12, rows=5, heap_size=64, seed=1)
    registry = MetricsRegistry()
    with use_registry(registry):
        controller = Controller(sketch_factory=factory,
                                key_function=KEY_FUNCTIONS[args.key],
                                epoch_seconds=args.epoch)
        controller.register(HeavyHitterApp(alpha=0.005)) \
                  .register(EntropyApp()).register(CardinalityApp())
        controller.run_trace(trace)
    rendered = to_json(registry) if args.format == "json" \
        else to_text(registry)
    if args.out:
        with open(args.out, "w") as out:
            out.write(rendered)
        print(f"wrote {args.format} metrics export to {args.out}")
    else:
        print(rendered, end="")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ConfigurationError
    from repro.core.query import QueryEngine, Statistic
    from repro.dataplane.packet import format_ipv4

    if (args.trace is None) == (args.host is None):
        print("query needs exactly one sketch source: --trace PATH or "
              "--host HOST", file=sys.stderr)
        return 2
    try:
        stats = [Statistic.parse(spec)
                 for spec in args.stats.split(",") if spec.strip()]
    except (ConfigurationError, ValueError) as exc:
        print(f"bad --stats: {exc}", file=sys.stderr)
        return 2
    if not stats:
        print("bad --stats: no statistics given", file=sys.stderr)
        return 2

    if args.trace is not None:
        from repro.dataplane.keys import KEY_FUNCTIONS
        from repro.dataplane.switch import MonitoredSwitch
        from repro.core.universal import UniversalSketch

        trace = _load_trace(args.trace)
        budget = args.memory_kb * 1024
        switch = MonitoredSwitch("query")
        switch.attach(
            "univmon",
            lambda: UniversalSketch.for_memory_budget(
                budget, levels=12, rows=5, heap_size=64, seed=1),
            KEY_FUNCTIONS[args.key])
        switch.process_trace(trace)
        sketch = switch.poll("univmon")
        show_ip = args.key in ("src_ip", "dst_ip")
    else:
        from repro.controlplane.rpc import RemoteSwitchClient

        with RemoteSwitchClient(args.host, args.port, timeout=args.timeout,
                                retry=_retry_policy(args)) as client:
            sketch = client.poll(args.program)
        show_ip = True

    results = QueryEngine(sketch).evaluate_many(stats)
    if args.json:
        payload = {
            "packets": sketch.total_weight,
            "memory_kb": sketch.memory_bytes() / 1024,
            "results": {name: value for name, value in results.items()},
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(f"sealed sketch: {sketch.total_weight} packets, "
          f"{sketch.memory_bytes() / 1024:.0f} KB")
    for name, value in results.items():
        if isinstance(value, list):
            rendered = ", ".join(
                (format_ipv4(int(k)) if show_ip else str(int(k)))
                + f"={w:.0f}" for k, w in value[:8])
            print(f"  {name:14s}: {rendered or '(none)'}")
        else:
            print(f"  {name:14s}: {value:.4f}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    return _with_metrics_json(args.metrics_json,
                              lambda: _detect_monitor(args))


def _detect_monitor(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ConfigurationError
    from repro.controlplane.controller import Controller
    from repro.dataplane.keys import KEY_FUNCTIONS
    from repro.dataplane.packet import format_ipv4
    from repro.detect import DetectionPipeline, default_rules, load_rules
    from repro.core.universal import UniversalSketch

    if (args.trace is None) == (args.scenario is None):
        print("detect needs exactly one input: --trace PATH or "
              "--scenario NAME", file=sys.stderr)
        return 2
    if args.scenario is not None:
        scenario, code = _scenario_or_exit_code(args.scenario, args.seed,
                                                args.scale)
        if scenario is None:
            return code
        trace = scenario.trace
        if not args.json:
            print(f"scenario {scenario.name!r} (seed {scenario.seed}): "
                  f"{len(trace)} packets over {scenario.n_epochs} "
                  f"{scenario.epoch_seconds:.0f}s epochs — "
                  f"{scenario.description}")
    else:
        trace = _load_trace(args.trace)
    try:
        rules = load_rules(args.rules) if args.rules is not None \
            else default_rules()
        pipeline = DetectionPipeline(
            rules, recover_fraction=args.recover_fraction)
    except (ConfigurationError, OSError, ValueError) as exc:
        print(f"bad rules: {exc}", file=sys.stderr)
        return 2
    budget = args.memory_kb * 1024
    factory = lambda: UniversalSketch.for_memory_budget(  # noqa: E731
        budget, levels=12, rows=5, heap_size=64, seed=1)
    controller = Controller(sketch_factory=factory,
                            key_function=KEY_FUNCTIONS[args.key],
                            epoch_seconds=args.epoch)
    controller.register(pipeline)
    try:
        reports = controller.run_trace(trace)
    finally:
        controller.close()

    if args.json:
        payload = {
            "rules": [{"name": r.name, "when": r.when,
                       "confirm_epochs": r.confirm_epochs,
                       "cooldown_epochs": r.cooldown_epochs,
                       "actions": list(r.actions)} for r in rules],
            "epochs": [{"epoch": rep.epoch_index,
                        "packets": rep.packets,
                        "states": rep["detect"]["states"],
                        "alerting": rep["detect"]["alerting"]}
                       for rep in reports],
            "events": [event.to_dict() for event in pipeline.events],
            "final_states": {name: state.value for name, state
                             in pipeline.states().items()},
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    for rep in reports:
        result = rep["detect"]
        states = " ".join(f"{name}={state}" for name, state
                          in sorted(result["states"].items()))
        print(f"epoch {rep.epoch_index} ({rep.packets} pkts): {states}")
        for event in result["events"]:
            if event["from"] != event["to"]:
                print(f"  {event['rule']}: {event['from']} -> "
                      f"{event['to']} [{event['condition']}]")
            for rec in event["recovered_keys"][:8]:
                print(f"    recovered {rec['feature']}/{rec['stream']}: "
                      f"{format_ipv4(rec['key'])} "
                      f"(~{rec['estimate']:.0f} pkts)")
            if event["zoom_regions"]:
                regions = ", ".join(
                    f"{format_ipv4(value)}/{plen}"
                    for value, plen in event["zoom_regions"][:6])
                print(f"    zoomed: {regions}")
    alerted = sorted({event.rule for event in pipeline.events
                      if event.state_to == "confirmed"})
    print(f"rules confirmed during the run: "
          f"{', '.join(alerted) or '(none)'}")
    return 0


def _cmd_coordinate(args: argparse.Namespace) -> int:
    return _with_metrics_json(args.metrics_json,
                              lambda: _coordinate_loop(args))


def _coordinate_loop(args: argparse.Namespace) -> int:
    import time

    from repro.controlplane.apps.cardinality import CardinalityApp
    from repro.controlplane.apps.entropy import EntropyApp
    from repro.controlplane.apps.heavy_hitters import HeavyHitterApp
    from repro.network.health import HealthTracker
    from repro.network.remote import RemoteCoordinator
    from repro.core.universal import UniversalSketch

    agents = {}
    for spec in args.agents:
        name, sep, addr = spec.partition("=")
        host, sep2, port = addr.rpartition(":")
        if not sep or not sep2 or not name:
            print(f"bad --agent {spec!r} (want NAME=HOST:PORT)",
                  file=sys.stderr)
            return 2
        agents[name] = (host, int(port))

    budget = args.memory_kb * 1024
    factory = lambda: UniversalSketch.for_memory_budget(  # noqa: E731
        budget, levels=12, rows=5, heap_size=64, seed=1)
    health = HealthTracker(agents, suspect_after=1,
                           fail_after=args.fail_after,
                           probe_every=args.probe_every,
                           probe_policy=_retry_policy(args))
    if args.topology == "tree":
        import dataclasses

        from repro.controlplane.rpc import RemoteSwitchClient
        from repro.network.hierarchy import (
            AgentLink, HierarchicalCoordinator, ResiliencePolicy)

        retry = _retry_policy(args)
        clients = {
            name: RemoteSwitchClient(
                host, port, timeout=args.timeout,
                retry=dataclasses.replace(retry, seed=retry.seed + index))
            for index, (name, (host, port)) in enumerate(agents.items())}
        coordinator = HierarchicalCoordinator(
            {name: AgentLink(client, program=args.program)
             for name, client in clients.items()},
            sketch_factory=factory, fanout=args.fanout, health=health,
            transfer=args.transfer,
            policy=ResiliencePolicy(min_coverage=args.min_coverage,
                                    quorum=args.quorum,
                                    fail_open=args.fail_mode == "open"))
        closer = lambda: [c.close() for c in clients.values()]  # noqa: E731
        print(f"coordinating {len(agents)} agent(s) over "
              f"{coordinator.plan.describe()}")
    else:
        coordinator = RemoteCoordinator(
            agents, sketch_factory=factory, program=args.program,
            retry=_retry_policy(args), timeout=args.timeout,
            health=health, transfer=args.transfer)
        closer = coordinator.close
        print(f"coordinating {len(agents)} agent(s): {', '.join(agents)}")
    coordinator.register(CardinalityApp()).register(EntropyApp()) \
               .register(HeavyHitterApp(alpha=args.alpha))
    try:
        epoch = 0
        while args.epochs <= 0 or epoch < args.epochs:
            report = coordinator.run_epoch()
            cov = report["coverage"]
            polled = cov.get("switches_polled",
                             cov.get("switches_covered"))
            line = (f"epoch {report.epoch_index}: "
                    f"{polled}/{cov['switches_total']} "
                    f"switches, {cov['packets_covered']} packets")
            if "status" in cov:
                line += f", status={cov['status']}"
            if cov.get("bytes_wire"):
                line += f", wire={cov['bytes_wire']}B"
            if cov["failed"]:
                line += f", failed={','.join(cov['failed'])}"
            if cov["recovered"]:
                line += f", recovered={','.join(cov['recovered'])}"
            if cov.get("retries"):
                line += f", retries={cov['retries']}"
            if "cardinality" in report.results:
                line += (f" | distinct="
                         f"{report['cardinality']['distinct']:.0f}"
                         f" entropy={report['entropy']['entropy']:.3f}")
            print(line)
            epoch += 1
            if args.epochs <= 0 or epoch < args.epochs:
                time.sleep(args.epoch)
    except KeyboardInterrupt:
        pass
    finally:
        closer()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.errors import ConfigurationError
    from repro.obs import MetricsRegistry, use_registry
    from repro.dataplane.keys import KEY_FUNCTIONS
    from repro.service import MonitoringService, ServiceConfig
    from repro.core.universal import UniversalSketch

    if (args.trace is None) == (args.scenario is None):
        print("serve needs exactly one input: --trace PATH or "
              "--scenario NAME", file=sys.stderr)
        return 2
    if args.scenario is not None:
        scenario, code = _scenario_or_exit_code(args.scenario, args.seed,
                                                args.scale)
        if scenario is None:
            return code
        trace = scenario.trace
    else:
        trace = _load_trace(args.trace)

    apps = []
    if args.detect or args.rules is not None:
        from repro.detect import DetectionPipeline, default_rules, load_rules
        try:
            rules = load_rules(args.rules) if args.rules is not None \
                else default_rules()
            apps.append(DetectionPipeline(rules))
        except (ConfigurationError, OSError, ValueError) as exc:
            print(f"bad rules: {exc}", file=sys.stderr)
            return 2

    try:
        config = ServiceConfig(
            host=args.host, port=args.port, epoch_seconds=args.epoch,
            ring_depth=args.ring, memo_size=args.memo,
            chunk_size=args.chunk_size, chunk_sleep=args.pace,
            max_epochs=args.epochs if args.epochs > 0 else None)
    except ConfigurationError as exc:
        print(f"{exc}", file=sys.stderr)
        return 2
    budget = args.memory_kb * 1024
    factory = lambda: UniversalSketch.for_memory_budget(  # noqa: E731
        budget, levels=12, rows=5, heap_size=64, seed=1)

    # The service serves /metrics, so it always runs instrumented.
    with use_registry(MetricsRegistry()):
        service = MonitoringService.from_trace(
            trace, config, sketch_factory=factory,
            key_function=KEY_FUNCTIONS[args.key], workers=args.workers,
            apps=apps)
        try:
            service.start()
        except OSError as exc:
            print(f"cannot bind {args.host}:{args.port}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"univmon service on http://{args.host}:{service.port} — "
              f"{args.epoch:g}s epochs, ring depth {args.ring}"
              + (f", {args.epochs} epochs then exit" if args.epochs
                 else " (ctrl-c to stop)"),
              flush=True)
        try:
            if config.max_epochs is not None:
                service.wait()
            else:
                while service.ingest.is_alive():
                    time.sleep(0.5)
        except KeyboardInterrupt:
            pass
        finally:
            service.stop()
        health = service.health()
        print(f"service stopped: {health['epochs_sealed']} epochs, "
              f"{health['packets_ingested']} packets ingested")
        return 0 if service.ingest.error is None else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "agent":
        return _cmd_agent(args)
    if args.command == "poll":
        return _cmd_poll(args)
    if args.command == "coordinate":
        return _cmd_coordinate(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "detect":
        return _cmd_detect(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
