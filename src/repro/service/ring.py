"""Lock-free publication ring of sealed epochs.

The always-on service has exactly one writer — the ingest thread, which
seals an epoch and *publishes* it — and arbitrarily many readers: HTTP
query handlers on the asyncio loop, SSE fan-out, scrapers, benchmarks.
The design that keeps readers latency-flat is immutability plus a single
reference swap:

- An :class:`EpochRecord` is frozen at publish time.  It carries the
  sealed sketch (never mutated again — the switch installed a fresh one
  at poll), its pre-built :class:`~repro.core.query.QuerySnapshot`, and
  the controller's :class:`~repro.controlplane.controller.EpochReport`.
- The ring holds the last ``depth`` records as an immutable **tuple**.
  ``publish`` builds a new tuple and stores it with one attribute
  assignment — atomic under the GIL, so a reader loading ``_records``
  sees either the old tuple or the new one, never a torn state.
- Readers take no lock, ever.  They load the tuple reference once and
  work on that consistent view; a concurrent publish cannot mutate it
  out from under them.

This is the memory model documented in DESIGN.md §14: publication is a
release (the record and everything reachable from it is fully built
before the swap), and the GIL gives readers the acquire.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.metrics import get_registry


@dataclass(frozen=True)
class EpochRecord:
    """One sealed epoch, frozen for concurrent readers.

    Attributes
    ----------
    epoch_index:
        Monotonic epoch number since service start.
    sealed_at:
        Wall-clock seconds (``time.time()``) at seal.
    packets:
        Packets ingested during the epoch.
    sketch:
        The sealed :class:`~repro.core.universal.UniversalSketch`.
        Immutable from here on — the data plane swapped in a fresh
        sketch at poll time, so queries against this one are safe from
        any thread.
    snapshot:
        The epoch's :class:`~repro.core.query.QuerySnapshot`, built once
        by the ingest thread before publication; every reader query
        reuses it through the sketch's version-guarded cache.
    report:
        The controller's per-epoch app results (detection states, ...).
    """

    epoch_index: int
    sealed_at: float
    packets: int
    sketch: Any
    snapshot: Any
    report: Any
    statistics: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> Dict[str, Any]:
        """JSON-able header (no heavy-hitter lists, no sketch state)."""
        return {
            "epoch": self.epoch_index,
            "sealed_at": self.sealed_at,
            "packets": self.packets,
            "start_time": getattr(self.report, "start_time", 0.0),
            "end_time": getattr(self.report, "end_time", 0.0),
        }


class EpochRing:
    """The last ``depth`` published epochs, single-writer / lock-free
    readers (see the module docstring for the memory model)."""

    __slots__ = ("depth", "_records")

    def __init__(self, depth: int = 8) -> None:
        if depth < 1:
            raise ConfigurationError(
                f"ring depth must be >= 1, got {depth}")
        self.depth = depth
        self._records: Tuple[EpochRecord, ...] = ()

    def __len__(self) -> int:
        return len(self._records)

    def publish(self, record: EpochRecord) -> None:
        """Append ``record``, evicting past ``depth`` (writer only).

        The new tuple is fully constructed before the single reference
        store — the only mutation readers can observe.
        """
        records = self._records + (record,)
        evicted = len(records) - self.depth
        if evicted > 0:
            records = records[evicted:]
        self._records = records  # atomic publish
        reg = get_registry()
        reg.gauge("univmon_service_ring_epochs",
                  help="epochs currently held in the publication "
                       "ring").set(len(records))
        reg.gauge("univmon_service_epoch",
                  help="index of the most recently published "
                       "epoch").set(record.epoch_index)
        if evicted > 0:
            reg.counter("univmon_service_ring_evictions_total",
                        help="epochs evicted from the publication "
                             "ring").inc(evicted)

    # ------------------------------------------------------------------ #
    # readers (no locks; load the tuple once, then use that view)
    # ------------------------------------------------------------------ #

    def latest(self) -> Optional[EpochRecord]:
        records = self._records
        return records[-1] if records else None

    def get(self, epoch_index: int) -> Optional[EpochRecord]:
        """The record for ``epoch_index`` if still resident."""
        records = self._records
        if not records:
            return None
        # Records are contiguous by construction; index arithmetic
        # beats a scan and stays correct if that ever changes rarely.
        offset = epoch_index - records[0].epoch_index
        if 0 <= offset < len(records) \
                and records[offset].epoch_index == epoch_index:
            return records[offset]
        for record in records:  # pragma: no cover - non-contiguous guard
            if record.epoch_index == epoch_index:
                return record
        return None

    def records(self) -> Tuple[EpochRecord, ...]:
        """A consistent view of the resident epochs, oldest first."""
        return self._records


def make_record(epoch_index: int, sealed, report,
                statistics: Optional[Dict[str, Any]] = None,
                sealed_at: Optional[float] = None) -> EpochRecord:
    """Build a publication record from one sealed epoch.

    Materialises the query snapshot *before* the record escapes to
    readers — the one snapshot build per epoch that
    ``univmon_query_snapshot_builds_total`` counts.
    """
    snapshot = sealed.query_snapshot() \
        if hasattr(sealed, "query_snapshot") else None
    return EpochRecord(
        epoch_index=epoch_index,
        sealed_at=time.time() if sealed_at is None else sealed_at,
        packets=report.packets,
        sketch=sealed,
        snapshot=snapshot,
        report=report,
        statistics=dict(statistics or {}),
    )


__all__ = ["EpochRecord", "EpochRing", "make_record"]
