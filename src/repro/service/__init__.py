"""The always-on monitoring service (``univmon serve``).

A long-running deployment of the epoch pipeline: a background ingest
thread seals epochs on a wall-clock timer and publishes immutable
per-epoch records into a lock-free ring; an asyncio HTTP front end
serves queries, metrics, epoch history, and SSE event streams against
those records without ever touching the live sketch.  See DESIGN.md
§14 and ``docs/service.md``.
"""

from repro.service.events import EventBroker, Subscription
from repro.service.http import ServiceHttp, HttpError
from repro.service.ingest import IngestLoop
from repro.service.ring import EpochRecord, EpochRing, make_record
from repro.service.service import MonitoringService, ServiceConfig

__all__ = [
    "MonitoringService",
    "ServiceConfig",
    "EpochRing",
    "EpochRecord",
    "make_record",
    "IngestLoop",
    "EventBroker",
    "Subscription",
    "ServiceHttp",
    "HttpError",
]
