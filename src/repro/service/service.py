"""The always-on monitoring service: ingest thread + asyncio front end.

Composition (DESIGN.md §14):

- an :class:`~repro.service.ingest.IngestLoop` thread drives the
  controller's epoch loop over an endless chunk source and seals on a
  wall-clock timer;
- each sealed epoch becomes an immutable
  :class:`~repro.service.ring.EpochRecord` — sketch, pre-built query
  snapshot, app results, and a small pre-evaluated statistics header —
  published into the lock-free :class:`~repro.service.ring.EpochRing`
  with a single reference swap;
- an asyncio thread runs the HTTP server
  (:class:`~repro.service.http.ServiceHttp`), answering queries from
  ring records through a shared :class:`~repro.core.query.QueryMemo`
  and streaming epoch/detection events over SSE via the
  :class:`~repro.service.events.EventBroker`.

Ingest and serving share no mutable state except the ring's published
tuple and the thread-safe memo/metrics, so serving load cannot stall
ingest and ingest cannot tear a response.
"""

from __future__ import annotations

import threading
import asyncio
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.metrics import get_registry
from repro.core.query import QueryEngine, QueryMemo, Statistic
from repro.controlplane.controller import Controller
from repro.dataplane.keys import KeyFunction, src_ip_key
from repro.dataplane.replay import LoopingChunkSource
from repro.dataplane.trace import Trace
from repro.service.events import EventBroker
from repro.service.http import ServiceHttp
from repro.service.ingest import IngestLoop
from repro.service.ring import EpochRing, make_record


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the always-on service (see ``univmon serve``)."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral (tests)
    epoch_seconds: float = 1.0
    ring_depth: int = 8
    memo_size: int = 128
    event_queue_size: int = 64
    chunk_size: int = 4096
    chunk_sleep: float = 0.0           # pacing; 0 = max-rate ingest
    max_epochs: Optional[int] = None   # None = run until stop()
    #: statistics pre-evaluated at seal, embedded in epoch SSE events
    epoch_statistics: Tuple[str, ...] = ("cardinality", "entropy",
                                         "l1", "f2")

    def __post_init__(self) -> None:
        if self.epoch_seconds <= 0:
            raise ConfigurationError(
                f"epoch_seconds must be > 0, got {self.epoch_seconds}")
        if self.ring_depth < 1:
            raise ConfigurationError(
                f"ring_depth must be >= 1, got {self.ring_depth}")


class MonitoringService:
    """Own an ingest loop and an HTTP front end over one controller.

    Lifecycle: ``start()`` brings up the HTTP server (in its own
    asyncio thread) and then the ingest thread; ``stop()`` tears down
    in reverse — stop ingest, drain its final partial epoch, release
    the controller's worker pool, then close the server.  Use as a
    context manager in tests.
    """

    def __init__(self, controller: Controller,
                 chunks: Iterable[Trace],
                 config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.controller = controller
        self.ring = EpochRing(self.config.ring_depth)
        self.broker = EventBroker(self.config.event_queue_size)
        self.memo = QueryMemo(self.config.memo_size)
        self.http = ServiceHttp(self)
        self._epoch_stats = tuple(Statistic.parse(spec)
                                  for spec in self.config.epoch_statistics)
        self.ingest = IngestLoop(
            controller, chunks,
            epoch_seconds=self.config.epoch_seconds,
            on_epoch=self._on_epoch,
            max_epochs=self.config.max_epochs,
            chunk_sleep=self.config.chunk_sleep)
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._stopping = False
        self._stopped = False

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_trace(cls, trace: Trace,
                   config: Optional[ServiceConfig] = None,
                   sketch_factory=None,
                   key_function: KeyFunction = src_ip_key,
                   workers: int = 1,
                   apps=()) -> "MonitoringService":
        """Service over a finite trace cycled forever
        (:class:`~repro.dataplane.replay.LoopingChunkSource`)."""
        config = config or ServiceConfig()
        controller = Controller(sketch_factory=sketch_factory,
                                key_function=key_function,
                                epoch_seconds=config.epoch_seconds,
                                workers=workers)
        for app in apps:
            controller.register(app)
        chunks = LoopingChunkSource(trace, chunk_size=config.chunk_size)
        return cls(controller, chunks, config)

    # ------------------------------------------------------------------ #
    # the seal callback (runs on the ingest thread)
    # ------------------------------------------------------------------ #

    def _on_epoch(self, sealed, report, trace: Trace) -> None:
        # make_record builds the epoch's snapshot; the statistics
        # evaluation below then reuses it through the version-guarded
        # cache, and warms the shared memo for the first reader query.
        record = make_record(self.ingest.epochs_sealed, sealed, report)
        statistics = QueryEngine(sealed, memo=self.memo) \
            .evaluate_many(self._epoch_stats)
        record.statistics.update(statistics)
        self.ring.publish(record)
        event = {"type": "epoch"}
        event.update(record.summary())
        event["statistics"] = {k: v for k, v in statistics.items()
                               if isinstance(v, (int, float))}
        self.broker.publish_from_thread(event)
        detect = report.results.get("detect")
        if detect:
            for detection in detect.get("events", ()):
                payload = {"type": "detection",
                           "epoch": record.epoch_index}
                payload.update(detection)
                self.broker.publish_from_thread(payload)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self, server_timeout: float = 10.0) -> "MonitoringService":
        """Bring up the HTTP server, then ingest.  Returns self."""
        if self._loop_thread is not None:
            raise ConfigurationError("service already started")
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="univmon-serve", daemon=True)
        self._loop_thread.start()
        if not self._started.wait(server_timeout):
            raise ConfigurationError("HTTP server failed to start in "
                                     f"{server_timeout}s")
        if self._start_error is not None:
            self._loop_thread.join(timeout=1.0)
            raise self._start_error
        self.ingest.start()
        get_registry().gauge(
            "univmon_service_up",
            help="1 while the monitoring service is running").set(1)
        return self

    def _run_loop(self) -> None:
        asyncio.run(self._serve_main())

    async def _serve_main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_async = asyncio.Event()
        self.broker.bind(self._loop)
        try:
            server = await asyncio.start_server(
                self.http.handle, self.config.host, self.config.port)
        except OSError as exc:
            self._start_error = exc
            self._started.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        async with server:
            await self._stop_async.wait()
        # ``async with`` closed the listener; lingering handler tasks
        # (SSE streams) exit on ``self.stopping`` within their timeout
        # tick and asyncio.run cancels anything left.

    @property
    def stopping(self) -> bool:
        return self._stopping

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the ingest loop exits (bounded runs); True if it
        did within ``timeout``."""
        self.ingest.join(timeout)
        return not self.ingest.is_alive()

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: ingest first (sealing its partial epoch),
        then the worker pool, then the HTTP loop."""
        if self._stopped:
            return
        self._stopping = True
        if self.ingest.is_alive() or self.ingest.ident is not None:
            self.ingest.stop()
            self.ingest.join(timeout)
        self.controller.close()
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._stop_async.set)
            except RuntimeError:  # pragma: no cover - already closing
                pass
        if self._loop_thread is not None:
            self._loop_thread.join(timeout)
        get_registry().gauge(
            "univmon_service_up",
            help="1 while the monitoring service is running").set(0)
        self._stopped = True

    def __enter__(self) -> "MonitoringService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def health(self) -> dict:
        ingest_ok = self.ingest.error is None
        done = self.config.max_epochs is not None \
            and self.ingest.epochs_sealed >= self.config.max_epochs
        alive = self.ingest.is_alive() or done
        status = "ok" if (ingest_ok and (alive or self._stopping)) \
            else "degraded"
        out = {
            "status": status,
            "epochs_sealed": self.ingest.epochs_sealed,
            "packets_ingested": self.ingest.packets_ingested,
            "ring_epochs": len(self.ring),
            "subscribers": self.broker.subscribers,
            "ingest_alive": self.ingest.is_alive(),
        }
        if self.ingest.error is not None:
            out["error"] = repr(self.ingest.error)
        return out


__all__ = ["MonitoringService", "ServiceConfig"]
