"""The service's ingest thread: chunked ingest, wall-clock sealing.

Ingest must never stall on serving.  The loop below owns the data path
end to end — pull a chunk from the source, feed it through the
controller's switch, and on the epoch timer seal + hand the epoch to
the publication callback — and it shares *nothing* mutable with the
HTTP side: the callback publishes an immutable record into the ring and
schedules event fan-out onto the asyncio loop, after which this thread
is back to ingesting.  The serving side can be saturated, slow, or
absent; the only ingest-side cost of serving is CPU the OS scheduler
gives to the other thread (measured by ``bench_service.py``; budget
<= 10%).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, Optional

from repro.errors import ConfigurationError
from repro.obs.metrics import get_registry
from repro.dataplane.trace import Trace

#: on_epoch callback: (sealed_sketch, EpochReport, epoch_trace) -> None
EpochCallback = Callable[[object, object, Trace], None]


class IngestLoop(threading.Thread):
    """Background thread running the epoch loop over a chunk source.

    Parameters
    ----------
    controller:
        A :class:`~repro.controlplane.controller.Controller`; the loop
        calls its decomposed epoch-loop API (``ingest`` per chunk,
        ``seal_epoch`` on the timer).
    chunks:
        Iterable of :class:`Trace` chunks — typically a
        :class:`~repro.dataplane.replay.LoopingChunkSource` (endless)
        or a finite list in tests.  A finite source seals its last
        partial epoch on exhaustion, then the loop exits.
    epoch_seconds:
        Wall-clock sealing interval.
    on_epoch:
        Called *from this thread* with ``(sealed, report, trace)``
        after each seal; must be fast and non-blocking (the service
        publishes a ring record and schedules fan-out).
    max_epochs:
        Stop after this many sealed epochs (None = run until
        :meth:`stop`).  Bounded runs are what the CLI's ``--epochs``
        and the tests use.
    chunk_sleep:
        Optional pacing sleep between chunks (demo mode; 0 = ingest at
        maximum rate).
    """

    def __init__(self, controller, chunks: Iterable[Trace],
                 epoch_seconds: float,
                 on_epoch: EpochCallback,
                 max_epochs: Optional[int] = None,
                 chunk_sleep: float = 0.0,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if epoch_seconds <= 0:
            raise ConfigurationError(
                f"epoch_seconds must be > 0, got {epoch_seconds}")
        if max_epochs is not None and max_epochs < 1:
            raise ConfigurationError(
                f"max_epochs must be >= 1, got {max_epochs}")
        super().__init__(name="univmon-ingest", daemon=True)
        self.controller = controller
        self.chunks = chunks
        self.epoch_seconds = epoch_seconds
        self.on_epoch = on_epoch
        self.max_epochs = max_epochs
        self.chunk_sleep = chunk_sleep
        self._clock = clock
        self._sleep = sleep
        self._stop_event = threading.Event()
        self.epochs_sealed = 0
        self.packets_ingested = 0
        self.error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #

    def stop(self) -> None:
        """Request exit; the loop notices between chunks."""
        self._stop_event.set()

    @property
    def stopping(self) -> bool:
        return self._stop_event.is_set()

    def run(self) -> None:  # pragma: no branch - exercised via service
        try:
            self._run()
        except BaseException as exc:  # surfaced via Service.health()
            self.error = exc
            get_registry().counter(
                "univmon_service_ingest_errors_total",
                help="ingest loop terminations by exception").inc()

    def _run(self) -> None:
        reg = get_registry()
        deadline = self._clock() + self.epoch_seconds
        pending = []
        source = iter(self.chunks)
        while not self._stop_event.is_set():
            if self.max_epochs is not None \
                    and self.epochs_sealed >= self.max_epochs:
                return
            try:
                chunk = next(source)
            except StopIteration:
                break
            self.controller.ingest(chunk)
            pending.append(chunk)
            self.packets_ingested += len(chunk)
            if self.chunk_sleep > 0.0:
                self._sleep(self.chunk_sleep)
            if self._clock() >= deadline:
                self._seal(pending, reg)
                pending = []
                deadline = self._clock() + self.epoch_seconds
        # Finite source exhausted or stop requested: drain what's left
        # so no ingested packet goes unpublished (graceful shutdown).
        if pending and (self.max_epochs is None
                        or self.epochs_sealed < self.max_epochs):
            self._seal(pending, reg)

    def _seal(self, pending, reg) -> None:
        trace = pending[0] if len(pending) == 1 else Trace.concat(pending)
        with reg.span("univmon_service_seal_seconds",
                      help="epoch seal + snapshot build + publication "
                           "latency"):
            sealed, report = self.controller.seal_epoch(
                self.epochs_sealed, trace=trace)
            self.on_epoch(sealed, report, trace)
        self.epochs_sealed += 1
