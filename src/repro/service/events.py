"""Event fan-out from the ingest thread to SSE subscribers.

One producer (the ingest thread, at epoch seal) and N consumers (one
asyncio task per connected ``/events`` client).  The contract the
service's latency story depends on:

- **Publishing never blocks ingest.**  The ingest thread hands the
  event to the asyncio loop with ``call_soon_threadsafe`` and moves on;
  fan-out runs on the loop.
- **A slow client never grows unbounded state.**  Every subscriber owns
  a bounded queue; when it is full the *oldest* event is dropped to
  admit the new one (fresh telemetry beats stale telemetry for
  monitoring streams), and the drop is counted in
  ``univmon_service_events_dropped_total``.
- **Slow clients do not penalise fast ones.**  Queues are per-client;
  a full queue affects only its owner.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs.metrics import get_registry


class Subscription:
    """One client's bounded event queue (created via
    :meth:`EventBroker.subscribe`, loop thread only)."""

    __slots__ = ("queue", "dropped")

    def __init__(self, maxsize: int) -> None:
        self.queue: "asyncio.Queue[Dict[str, Any]]" = \
            asyncio.Queue(maxsize=maxsize)
        self.dropped = 0

    def offer(self, event: Dict[str, Any]) -> bool:
        """Enqueue, dropping the oldest event if full.  Returns True if
        an old event was dropped (loop thread only)."""
        dropped = False
        while True:
            try:
                self.queue.put_nowait(event)
                return dropped
            except asyncio.QueueFull:
                try:
                    self.queue.get_nowait()
                    self.dropped += 1
                    dropped = True
                except asyncio.QueueEmpty:  # pragma: no cover - race-free
                    pass                    # on one loop, but stay safe


class EventBroker:
    """Bounded per-client fan-out of per-epoch events.

    ``bind(loop)`` must run before cross-thread publishing; subscriber
    management and delivery happen exclusively on that loop, so the
    subscriber list needs no lock for delivery — only ``publish_from_
    thread`` crosses threads, and it does so by scheduling onto the
    loop.
    """

    def __init__(self, queue_size: int = 64) -> None:
        if queue_size < 1:
            raise ConfigurationError(
                f"queue_size must be >= 1, got {queue_size}")
        self.queue_size = queue_size
        self._subs: List[Subscription] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._lock = threading.Lock()  # guards _loop hand-off only

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        with self._lock:
            self._loop = loop

    # ------------------------------------------------------------------ #
    # loop-side: subscribers and delivery
    # ------------------------------------------------------------------ #

    def subscribe(self) -> Subscription:
        sub = Subscription(self.queue_size)
        self._subs.append(sub)
        get_registry().gauge(
            "univmon_service_event_subscribers",
            help="currently connected /events clients").set(len(self._subs))
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        try:
            self._subs.remove(sub)
        except ValueError:
            return
        get_registry().gauge(
            "univmon_service_event_subscribers",
            help="currently connected /events clients").set(len(self._subs))

    @property
    def subscribers(self) -> int:
        return len(self._subs)

    def deliver(self, event: Dict[str, Any]) -> None:
        """Fan one event out to every subscriber (loop thread only)."""
        reg = get_registry()
        reg.counter("univmon_service_events_total",
                    help="events published to the SSE broker").inc()
        dropped = 0
        for sub in self._subs:
            if sub.offer(event):
                dropped += 1
        if dropped:
            reg.counter("univmon_service_events_dropped_total",
                        help="events dropped at full subscriber queues "
                             "(drop-oldest backpressure)").inc(dropped)

    # ------------------------------------------------------------------ #
    # producer-side: called from the ingest thread
    # ------------------------------------------------------------------ #

    def publish_from_thread(self, event: Dict[str, Any]) -> bool:
        """Schedule delivery onto the bound loop; never blocks.

        Returns False (event discarded) when no loop is bound or the
        loop is already closed — both normal during startup/shutdown.
        """
        with self._lock:
            loop = self._loop
        if loop is None or loop.is_closed():
            return False
        try:
            loop.call_soon_threadsafe(self.deliver, event)
        except RuntimeError:  # loop closed between check and call
            return False
        return True


__all__ = ["EventBroker", "Subscription"]
