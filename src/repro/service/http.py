"""The service's asyncio HTTP/1.1 front end.

Hand-rolled on ``asyncio.start_server`` (the repo carries no HTTP
framework dependency): one short-lived connection per request
(``Connection: close``), except ``GET /events`` which stays open as a
Server-Sent-Events stream.

Request handlers are deliberately synchronous once parsed: they read an
immutable :class:`~repro.service.ring.EpochRecord` off the publication
ring (no lock) and evaluate against its cached snapshot on the event
loop.  Running the evaluation *on* the loop is what makes the query
memo collapse identical concurrent queries to one evaluation — requests
serialise through the loop, so the first computes and every concurrent
duplicate hits the memo.  Batch evaluation over a warm snapshot is
sub-millisecond at the service's geometry, far below the network cost
of the request itself.

Endpoints (reference: ``docs/service.md``):

- ``GET  /healthz``     liveness + ingest progress
- ``GET  /metrics``     Prometheus text exposition
- ``GET  /metrics.json`` JSON metrics dump
- ``POST /query``       batch statistics against a published epoch
- ``GET  /epochs``      ring contents (summaries)
- ``GET  /epochs/{n}``  one epoch: summary, statistics, app results
- ``GET  /events``      SSE stream of epoch and detection events
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.export import to_text, to_json
from repro.obs.metrics import get_registry
from repro.core.query import QueryEngine, Statistic

#: Latency histogram bounds: sub-ms memo hits to second-scale stalls.
REQUEST_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5)

_MAX_REQUEST_LINE = 8192
_MAX_HEADERS = 64
_MAX_BODY = 1 << 20

#: Statistics evaluated when a query names none.
DEFAULT_QUERY_SPECS: Tuple[str, ...] = (
    "cardinality", "entropy", "l1", "f2")

#: Spec-string -> parsed Statistic.  Statistics are frozen, so parsed
#: instances are shared across requests; pollers re-send the same few
#: specs forever.  Bounded crudely — a wipe just re-parses.
_STAT_CACHE: Dict[str, Statistic] = {}
_STAT_CACHE_MAX = 512


def _parse_stat(spec: str) -> Statistic:
    stat = _STAT_CACHE.get(spec)
    if stat is None:
        stat = Statistic.parse(spec)
        if len(_STAT_CACHE) >= _STAT_CACHE_MAX:
            _STAT_CACHE.clear()
        _STAT_CACHE[spec] = stat
    return stat


class HttpError(Exception):
    """A response-able request failure."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable"}


def _head(status: int, content_type: str,
          length: Optional[int] = None) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             "Connection: close"]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


class ServiceHttp:
    """Routes requests against a :class:`MonitoringService`'s state."""

    def __init__(self, service) -> None:
        self.service = service
        # (registry id, route, status) -> (registry, counter, histogram)
        # so the per-request accounting is two cached attribute pokes
        # instead of two registry get-or-creates; the registry is kept
        # in the value to guard against id() reuse across registries.
        self._metric_cache: Dict[Tuple[int, str, int], tuple] = {}

    def _request_metrics(self, route: str, status: int):
        reg = get_registry()
        key = (id(reg), route, status)
        cached = self._metric_cache.get(key)
        if cached is None or cached[0] is not reg:
            cached = (
                reg,
                reg.counter("univmon_service_requests_total",
                            help="HTTP requests served",
                            route=route, status=str(status)),
                reg.histogram("univmon_service_request_seconds",
                              help="request latency by route",
                              buckets=REQUEST_SECONDS_BUCKETS,
                              route=route),
            )
            self._metric_cache[key] = cached
        return cached[1], cached[2]

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        route = "unparsed"
        status = 500
        loop = asyncio.get_running_loop()
        start = loop.time()
        try:
            method, path, body = await self._read_request(reader)
            route, handler, args = self._route(method, path)
            if route == "/events":
                status = 200  # counted once in finally, when it ends
                await self._stream_events(writer)
                return
            status, payload, content_type = handler(body, *args)
            data = payload if isinstance(payload, bytes) \
                else json.dumps(payload).encode("utf-8")
            writer.write(_head(status, content_type, len(data)) + data)
            await writer.drain()
        except HttpError as err:
            status = err.status
            data = json.dumps({"error": err.message}).encode("utf-8")
            try:
                writer.write(_head(status, "application/json",
                                   len(data)) + data)
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.LimitOverrunError):
            status = 400  # client went away / malformed framing
        finally:
            counter, histogram = self._request_metrics(route, status)
            counter.inc()
            histogram.observe(loop.time() - start)
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop teardown
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if len(line) > _MAX_REQUEST_LINE:
            raise HttpError(400, "request line too long")
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise HttpError(400, "malformed request line")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        for _ in range(_MAX_HEADERS):
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise HttpError(400, "bad Content-Length")
        else:
            raise HttpError(400, "too many headers")
        if content_length > _MAX_BODY:
            raise HttpError(413, "body too large")
        body = await reader.readexactly(content_length) \
            if content_length else b""
        return method, path, body

    def _route(self, method: str, path: str):
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            return "/healthz", self._healthz, ()
        if path == "/metrics" and method == "GET":
            return "/metrics", self._metrics_text, ()
        if path == "/metrics.json" and method == "GET":
            return "/metrics.json", self._metrics_json, ()
        if path == "/query":
            if method != "POST":
                raise HttpError(405, "use POST /query")
            return "/query", self._query, ()
        if path == "/epochs" and method == "GET":
            return "/epochs", self._epochs, ()
        if path.startswith("/epochs/") and method == "GET":
            raw = path[len("/epochs/"):]
            try:
                index = int(raw)
            except ValueError:
                raise HttpError(400, f"bad epoch index {raw!r}")
            return "/epochs/{n}", self._epoch, (index,)
        if path == "/events" and method == "GET":
            return "/events", None, ()
        raise HttpError(404, f"no route for {method} {path}")

    # ------------------------------------------------------------------ #
    # handlers
    # ------------------------------------------------------------------ #

    def _healthz(self, body: bytes):
        return 200, self.service.health(), "application/json"

    def _metrics_text(self, body: bytes):
        text = to_text(get_registry())
        return 200, text.encode("utf-8"), "text/plain; version=0.0.4"

    def _metrics_json(self, body: bytes):
        return (200, to_json(get_registry()).encode("utf-8"),
                "application/json")

    def _epochs(self, body: bytes):
        records = self.service.ring.records()
        return 200, {
            "depth": self.service.ring.depth,
            "epochs": [r.summary() for r in records],
        }, "application/json"

    def _epoch(self, body: bytes, index: int):
        record = self.service.ring.get(index)
        if record is None:
            raise HttpError(404, f"epoch {index} not in the ring")
        payload = record.summary()
        payload["statistics"] = _jsonable(record.statistics)
        payload["results"] = _jsonable(record.report.results)
        return 200, payload, "application/json"

    def _query(self, body: bytes):
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            raise HttpError(400, "body must be JSON")
        if not isinstance(payload, dict):
            raise HttpError(400, "body must be a JSON object")
        specs = payload.get("statistics", list(DEFAULT_QUERY_SPECS))
        if not isinstance(specs, list) or not specs \
                or not all(isinstance(s, str) for s in specs):
            raise HttpError(400,
                            "statistics must be a non-empty string list")
        try:
            stats = tuple(_parse_stat(spec) for spec in specs)
        except ConfigurationError as err:
            raise HttpError(400, str(err))
        epoch = payload.get("epoch")
        if epoch is None:
            record = self.service.ring.latest()
        else:
            if not isinstance(epoch, int):
                raise HttpError(400, "epoch must be an integer")
            record = self.service.ring.get(epoch)
        if record is None:
            raise HttpError(404, "requested epoch is not published"
                            if epoch is not None
                            else "no epoch published yet")
        engine = QueryEngine(record.sketch, memo=self.service.memo)
        results = engine.evaluate_many(stats)
        return 200, {
            "epoch": record.epoch_index,
            "sealed_at": record.sealed_at,
            "packets": record.packets,
            "results": _jsonable(results),
        }, "application/json"

    # ------------------------------------------------------------------ #
    # SSE
    # ------------------------------------------------------------------ #

    async def _stream_events(self, writer: asyncio.StreamWriter) -> None:
        writer.write(_head(200, "text/event-stream"))
        await writer.drain()
        sub = self.service.broker.subscribe()
        try:
            while not self.service.stopping:
                try:
                    event = await asyncio.wait_for(sub.queue.get(),
                                                   timeout=0.25)
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\r\n\r\n")
                    await writer.drain()
                    continue
                data = json.dumps(event)
                writer.write(f"data: {data}\n\n".encode("utf-8"))
                # drain() applies TCP backpressure to *this* task only;
                # while it waits, the bounded queue drops oldest events
                # so a stalled client costs O(queue_size) memory.
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.service.broker.unsubscribe(sub)


def _jsonable(value: Any) -> Any:
    """Recursively coerce results to JSON-safe types (numpy scalars,
    tuples-as-lists, detection event objects)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if hasattr(value, "to_dict"):
        return _jsonable(value.to_dict())
    return str(value)


__all__ = ["ServiceHttp", "HttpError", "REQUEST_SECONDS_BUCKETS",
           "DEFAULT_QUERY_SPECS"]
