"""One level of the universal sketch: a Count Sketch plus its ``Q_j`` heap.

Algorithm 1 keeps, for every sampled substream ``D_j``, a Count Sketch and
the substream's top-k L2 heavy hitters.  The heap entries (key, estimated
count) are exactly the ``(i, w_j(i))`` pairs Algorithm 2 consumes.

Heavy hitter tracking piggybacks on the counter update: the same per-row
(bucket, sign) pairs the update touches yield the post-update median
estimate, so tracking costs no extra hashing.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.sketches.base import UpdateCost
from repro.sketches.countsketch import CountSketch
from repro.sketches.topk import TopK


class SketchLevel:
    """Count Sketch + top-k heavy hitter heap for one substream ``D_j``."""

    __slots__ = ("sketch", "topk", "packets", "weight")

    def __init__(self, rows: int, width: int, heap_size: int,
                 seed: Optional[int] = None,
                 counter_bytes: int = 4) -> None:
        self.sketch = CountSketch(rows=rows, width=width, seed=seed,
                                  counter_bytes=counter_bytes)
        self.topk = TopK(heap_size)
        self.packets = 0   # substream length m_j
        self.weight = 0    # substream total weight

    def update(self, key: int, weight: int = 1) -> None:
        """Fold one element of ``D_j`` in and refresh its heap estimate."""
        sketch = self.sketch
        table = sketch.table
        w = sketch.width
        estimates = np.empty(sketch.rows, dtype=np.float64)
        for r, h in enumerate(sketch._hashes):
            v = h(key)
            sign = 1 if (v >> 63) else -1
            bucket = v % w
            table[r, bucket] += sign * weight
            estimates[r] = sign * table[r, bucket]
        self.packets += 1
        self.weight += weight
        self.topk.offer(key, float(np.median(estimates)))

    def update_array(self, keys: np.ndarray,
                     weights: Optional[np.ndarray] = None,
                     distinct: Optional[np.ndarray] = None) -> None:
        """Bulk path: update counters vectorised, then refresh the heap
        from the post-batch point estimates of the batch's distinct keys.

        Equivalent data-plane state; the heap contents are at least as
        accurate as the streaming heap (estimates are post-batch).
        ``distinct``, when given, must be the sorted distinct keys of
        ``keys`` — the universal sketch computes it once for the whole
        batch and hands each level its slice, skipping a per-level sort.
        """
        if len(keys) == 0:
            return
        self.sketch.update_array(keys, weights)
        self.packets += len(keys)
        if weights is None:
            self.weight += len(keys)
        else:
            self.weight += int(np.sum(weights))
        uniq = np.unique(keys) if distinct is None else distinct
        estimates = self.sketch.query_many(uniq)
        # Bulk merge: equivalent to offering every (key, estimate) in
        # increasing-|estimate| order, in O(capacity) Python work.
        self.topk.offer_many(uniq, estimates, sorted_keys=True)

    def copy(self) -> "SketchLevel":
        """An independent snapshot sharing only the (immutable) hashes."""
        out = SketchLevel.__new__(SketchLevel)
        out.sketch = self.sketch.copy()
        out.topk = self.topk.copy()
        out.packets = self.packets
        out.weight = self.weight
        return out

    def refresh_heap(self) -> None:
        """Re-query every heap key against the current counters.

        Called after merges/subtractions, when stored estimates are stale.
        """
        keys = self.topk.keys()
        if not keys:
            return
        key_arr = np.array(keys, dtype=np.uint64)
        estimates = self.sketch.query_many(key_arr)
        fresh = TopK(self.topk.capacity)
        fresh.offer_many(key_arr, estimates)
        self.topk = fresh

    def heavy_hitters(self) -> List[Tuple[int, float]]:
        """The level's ``Q_j``: (key, w_j(key)) pairs, largest first."""
        return self.topk.items()

    def memory_bytes(self) -> int:
        return self.sketch.memory_bytes() + self.topk.memory_bytes()

    def update_cost(self) -> UpdateCost:
        base = self.sketch.update_cost()
        # Heap maintenance: one bounded-size heap touch per update.
        return UpdateCost(hashes=base.hashes,
                          counter_updates=base.counter_updates,
                          memory_words=base.memory_words + 1)
