"""Sliding-window universal sketching (§5 / Braverman-Ostrovsky-Roytman).

The paper's discussion section points at zero-one laws for sliding
windows.  This module implements the practical epoch-ring construction:
the window of the last ``window_epochs`` epochs is covered by one
universal sketch per epoch (all sharing a seed), and a query-time merge —
which sketch linearity makes exact — yields a universal sketch for the
whole window.  Advancing the window drops the oldest epoch, giving strict
expiry at epoch granularity (the smooth-histogram constructions refine
this to sub-epoch accuracy at higher complexity; epoch granularity is
what the controller's 5-second polling loop needs).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import ConfigurationError
from repro.core.universal import UniversalSketch


class SlidingWindowUniversalSketch:
    """Universal sketch over the most recent ``window_epochs`` epochs.

    Parameters
    ----------
    window_epochs:
        Number of epochs the window spans.
    levels, rows, width, heap_size, seed:
        Geometry of each per-epoch :class:`UniversalSketch`; the seed is
        shared so the epoch sketches are mergeable.
    """

    def __init__(self, window_epochs: int, levels: int = 16, rows: int = 5,
                 width: int = 1024, heap_size: int = 64,
                 seed: Optional[int] = None) -> None:
        if window_epochs < 1:
            raise ConfigurationError(
                f"window_epochs must be >= 1, got {window_epochs}")
        if seed is None:
            raise ConfigurationError(
                "sliding windows need an explicit seed (epoch sketches "
                "must be mergeable)")
        self.window_epochs = window_epochs
        self._params = dict(levels=levels, rows=rows, width=width,
                            heap_size=heap_size, seed=seed)
        self._epochs: Deque[UniversalSketch] = deque()
        self._current = UniversalSketch(**self._params)

    # ------------------------------------------------------------------ #
    # stream interface
    # ------------------------------------------------------------------ #

    def update(self, key: int, weight: int = 1) -> None:
        self._current.update(key, weight)

    def update_array(self, keys, weights=None) -> None:
        self._current.update_array(keys, weights)

    def advance_epoch(self) -> None:
        """Seal the current epoch and slide the window forward."""
        self._epochs.append(self._current)
        while len(self._epochs) > self.window_epochs:
            self._epochs.popleft()
        self._current = UniversalSketch(**self._params)

    # ------------------------------------------------------------------ #
    # query interface
    # ------------------------------------------------------------------ #

    def window_sketch(self) -> UniversalSketch:
        """Merged universal sketch covering the window + current epoch.

        Always an independent snapshot (the :meth:`UniversalSketch.copy`
        contract): callers may keep querying or mutating the result while
        the window keeps ingesting, without either side seeing the other.
        """
        merged = self._current
        for epoch in self._epochs:
            merged = merged.merge(epoch)
        if merged is self._current:
            # Empty epoch ring: merging allocated nothing, so snapshot
            # the live sketch instead of aliasing data-plane state.
            merged = self._current.copy()
        return merged

    def epochs_in_window(self) -> int:
        return len(self._epochs)

    def heavy_hitters(self, fraction: float):
        return self.window_sketch().heavy_hitters(fraction)

    def cardinality(self) -> float:
        return self.window_sketch().cardinality()

    def entropy(self, base: float = 2.0) -> float:
        return self.window_sketch().entropy(base=base)

    def g_sum(self, g) -> float:
        return self.window_sketch().g_sum(g)

    def memory_bytes(self) -> int:
        per_epoch = self._current.memory_bytes()
        return per_epoch * (len(self._epochs) + 1)
