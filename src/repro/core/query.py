"""The vectorised control-plane query engine.

PRs 1 and 4 made the data-plane ingest vectorised and multi-core, but
every control-plane estimate still ran Algorithm 2 as a scalar Python
loop: one ``g(w)`` call and one ``sampler.bit`` hash per heavy hitter per
level, repeated from scratch by every app, every epoch.  The whole point
of the universal-streaming architecture is that *one* generic data
structure is amortised over many measurement tasks — the query side
should exploit that sharing too.

This module does, in three pieces:

- :class:`QuerySnapshot` — the per-level heap state materialised once
  per sketch state as NumPy arrays: heavy-hitter keys, signed weights,
  magnitudes, and the *pre-computed* sampling-bit correction factors
  ``1 - 2*h_{j+1}(i)`` (one packed-tabulation gather per level, see
  :meth:`~repro.hashing.sampling.LevelSampler.bit_array`).  Recursive
  Sum then runs as ``levels`` array reductions instead of thousands of
  Python-level hash and g calls.
- :class:`Statistic` — a small declarative spec ("entropy in bits",
  "heavy hitters above 0.5%", "F_1.5") naming one estimate.
- :class:`QueryEngine` — batch evaluation: an arbitrary set of
  statistics computed from *one* snapshot in a single pass
  (:meth:`QueryEngine.evaluate_many`), which is what the controller,
  the remote coordinator, and ``univmon query`` use per epoch.

:class:`~repro.core.universal.UniversalSketch` caches the snapshot
behind a mutation version counter (``sketch.query_snapshot()``), so the
scalar convenience estimators in :mod:`repro.core.gsum` — which route
through snapshots too — share one build per sketch state with any batch
evaluation, no matter how many apps ask.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.metrics import get_registry
from repro.core.gfunctions import ABS, CARDINALITY, GFunction, make_moment

#: Batch-size histogram bounds: statistics per evaluate_many call.
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)


def _level_arrays(level) -> Tuple[np.ndarray, np.ndarray]:
    """One level's heap as (keys, signed weights), largest |w| first.

    Ordering matches ``TopK.items()`` — a stable descending sort on
    magnitude over dict-insertion order — so G-core output from a
    snapshot is byte-identical to the scalar heap walk.
    """
    topk = getattr(level, "topk", None)
    if topk is not None:
        est = topk._estimates
        n = len(est)
        keys = np.fromiter(est.keys(), dtype=np.uint64, count=n)
        weights = np.fromiter(est.values(), dtype=np.float64, count=n)
    else:  # duck-typed levels in tests: fall back to the public walk
        items = level.heavy_hitters()
        keys = np.array([k for k, _ in items], dtype=np.uint64)
        weights = np.array([w for _, w in items], dtype=np.float64)
        return keys, weights
    order = np.argsort(-np.abs(weights), kind="stable")
    return keys[order], weights[order]


class QuerySnapshot:
    """Frozen, array-shaped view of one sketch state's query inputs.

    Attributes
    ----------
    keys, weights, mags:
        Per-level arrays: heavy-hitter keys (``uint64``), their signed
        Count Sketch estimates (``float64``), and the magnitudes
        ``|w|``.  Ordered largest magnitude first (heap order).
    factors:
        Per-level ``1 - 2 * h_{j+1}(key)`` correction factors
        (``float64``), for levels ``0 .. deepest-1``; the deepest level
        needs none (Recursive Sum starts there).
    total_weight:
        The stream weight ``m`` the sketch observed.
    version:
        The sketch mutation version this snapshot was built at (``None``
        for uncached duck-typed builds).
    """

    __slots__ = ("keys", "weights", "mags", "factors", "total_weight",
                 "deepest", "version", "_flat_mags", "_level_offsets",
                 "_gsum_coeffs")

    def __init__(self, keys: List[np.ndarray], weights: List[np.ndarray],
                 factors: List[np.ndarray], total_weight: float,
                 version: Optional[int] = None) -> None:
        self.keys = keys
        self.weights = weights
        self.mags = [np.abs(w) for w in weights]
        self.factors = factors
        self.total_weight = total_weight
        self.deepest = len(keys) - 1
        self.version = version
        self._flat_mags: Optional[np.ndarray] = None
        self._level_offsets: Optional[np.ndarray] = None
        self._gsum_coeffs: Optional[np.ndarray] = None

    @classmethod
    def build(cls, sketch, version: Optional[int] = None) -> "QuerySnapshot":
        """Materialise the snapshot from any sketch with ``.levels`` and
        ``.sampler`` (heap walk + one bulk bit gather per level)."""
        levels = sketch.levels
        sampler = sketch.sampler
        deepest = len(levels) - 1
        keys: List[np.ndarray] = []
        weights: List[np.ndarray] = []
        factors: List[np.ndarray] = []
        for level in levels:
            k, w = _level_arrays(level)
            keys.append(k)
            weights.append(w)
        upper = keys[:deepest]  # levels needing h_{j+1} correction bits
        words = None
        bulk_words = getattr(sampler, "parity_words", None)
        if bulk_words is not None and upper:
            # One fused gather for the whole cascade: bit j of the word
            # for a level-j key is its h_{j+1} sampling bit.
            words = bulk_words(np.concatenate(upper))
        if words is not None:
            offset = 0
            for j, k in enumerate(upper):
                w = words[offset:offset + len(k)]
                offset += len(k)
                bits = (w >> np.int64(j)) & np.int64(1)
                factors.append(1.0 - 2.0 * bits.astype(np.float64))
        else:  # per-level fallback (levels > 63, or duck-typed samplers)
            bulk_bits = getattr(sampler, "bit_array", None)
            for j, k in enumerate(upper):
                if len(k) == 0:
                    factors.append(np.zeros(0, dtype=np.float64))
                elif bulk_bits is not None:
                    bits = bulk_bits(j + 1, k)
                    factors.append(1.0 - 2.0 * bits.astype(np.float64))
                else:  # scalar sampler (duck-typed tests)
                    factors.append(np.array(
                        [1.0 - 2.0 * sampler.bit(j + 1, int(key))
                         for key in k], dtype=np.float64))
        total = getattr(sketch, "total_weight", None)
        if total is None:
            total = float(np.sum(weights[0])) if len(weights[0]) else 0.0
        return cls(keys, weights, factors, float(total), version=version)

    # ------------------------------------------------------------------ #
    # Algorithm 2 as array reductions
    # ------------------------------------------------------------------ #

    def _flat(self) -> Tuple[np.ndarray, np.ndarray]:
        """All levels' magnitudes as one array, plus level offsets.

        Built lazily and cached: the snapshot is immutable, and a
        multi-statistic batch applies several g functions to the same
        magnitudes — one fused ``apply_array`` per statistic beats one
        per (statistic, level)."""
        if self._flat_mags is None:
            sizes = [len(m) for m in self.mags]
            offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
            np.cumsum(sizes, out=offsets[1:])
            self._flat_mags = (np.concatenate(self.mags) if sizes
                               else np.zeros(0, dtype=np.float64))
            self._level_offsets = offsets
        return self._flat_mags, self._level_offsets

    def gvalues(self, g: GFunction, min_weight: float = 0.5) \
            -> List[np.ndarray]:
        """Per-level ``g(|w|)`` with sub-``min_weight`` entries zeroed.

        The returned arrays are contiguous views into one fused
        ``g`` application, so the per-level reductions downstream see
        exactly the values (and summation order) of a per-level apply.
        """
        flat, offsets = self._flat()
        vals = g.apply_array(flat)
        if min_weight > 0.0:
            vals = np.where(flat >= min_weight, vals, 0.0)
        return [vals[offsets[j]:offsets[j + 1]]
                for j in range(len(self.mags))]

    def _coeffs(self) -> np.ndarray:
        """Recursive-Sum coefficients aligned with the flat magnitudes.

        Unrolling the Horner recursion, level ``j < deepest``
        contributes ``2**j * (1 - 2*h_{j+1}(i))`` per key and the
        deepest level contributes ``2**deepest`` — all exact powers of
        two times ±1, so folding them into one vector changes nothing
        but the summation order.  Cached: they depend only on the
        snapshot's structure, not on ``g``."""
        if self._gsum_coeffs is None:
            flat, offsets = self._flat()
            coeffs = np.empty_like(flat)
            for j in range(self.deepest):
                coeffs[offsets[j]:offsets[j + 1]] = \
                    np.ldexp(self.factors[j], j)
            coeffs[offsets[self.deepest]:offsets[self.deepest + 1]] = \
                float(1 << self.deepest)
            self._gsum_coeffs = coeffs
        return self._gsum_coeffs

    def gsum(self, g: GFunction, min_weight: float = 0.5) -> float:
        """Recursive Sum over the snapshot — the vectorised Algorithm 2.

        Numerically equivalent to the scalar reference
        (:func:`repro.core.gsum.estimate_gsum_scalar`): the same terms
        enter the same recursion, here fused into a single dot product
        against the cached level coefficients; only the summation order
        differs (one BLAS reduction vs the per-level left-to-right
        walk).
        """
        flat, offsets = self._flat()
        vals = g.apply_array(flat)
        if min_weight > 0.0:
            vals = np.where(flat >= min_weight, vals, 0.0)
        return float(np.dot(self._coeffs(), vals))

    def gcore(self, fraction: float,
              total: Optional[float] = None) -> List[Tuple[int, float]]:
        """Level-0 keys whose |estimate| clears ``fraction * total``."""
        if total is None:
            total = self.total_weight
        threshold = fraction * float(total)
        keys, weights, mags = self.keys[0], self.weights[0], self.mags[0]
        mask = mags >= threshold
        return [(int(k), float(w)) for k, w in zip(keys[mask],
                                                   weights[mask])]

    def heap_entries(self) -> int:
        """Total heavy-hitter entries across all levels (sizing info)."""
        return int(sum(len(k) for k in self.keys))


@dataclass(frozen=True)
class Statistic:
    """One named estimate for :meth:`QueryEngine.evaluate_many`.

    Build through the factory classmethods (``Statistic.entropy()``,
    ``Statistic.heavy_hitters(0.01)``, …) or :meth:`parse` for CLI-style
    specs (``"hh:0.01"``, ``"moment:1.5"``, ``"cardinality"``).
    """

    name: str
    kind: str                      # gsum | gcore | entropy | l2 | f2
    g: Optional[GFunction] = None
    fraction: float = 0.005
    base: float = 2.0
    min_weight: float = 0.5
    clamp: bool = True             # G-sums of non-negative g's are >= 0

    # ----------------------------- factories -------------------------- #

    @classmethod
    def gsum(cls, g: GFunction, name: Optional[str] = None,
             clamp: bool = False) -> "Statistic":
        """An arbitrary Stream-PolyLog G-sum."""
        return cls(name=name or f"gsum_{g.name}", kind="gsum", g=g,
                   clamp=clamp)

    @classmethod
    def heavy_hitters(cls, fraction: float = 0.005) -> "Statistic":
        return cls(name="heavy_hitters", kind="gcore", fraction=fraction)

    @classmethod
    def cardinality(cls) -> "Statistic":
        return cls(name="cardinality", kind="gsum", g=CARDINALITY)

    @classmethod
    def l1(cls) -> "Statistic":
        return cls(name="l1", kind="gsum", g=ABS)

    @classmethod
    def l2(cls) -> "Statistic":
        return cls(name="l2", kind="l2")

    @classmethod
    def f2(cls) -> "Statistic":
        return cls(name="f2", kind="f2")

    @classmethod
    def entropy(cls, base: float = 2.0) -> "Statistic":
        return cls(name="entropy", kind="entropy", base=base)

    @classmethod
    def moment(cls, p: float) -> "Statistic":
        return cls(name=f"moment_{p:g}", kind="gsum", g=make_moment(p))

    _ALIASES = {
        "hh": "heavy_hitters", "heavy_hitters": "heavy_hitters",
        "cardinality": "cardinality", "f0": "cardinality",
        "ddos": "cardinality",
        "l1": "l1", "l2": "l2", "f2": "f2",
        "entropy": "entropy", "moment": "moment",
    }

    @classmethod
    def parse(cls, spec: str) -> "Statistic":
        """``"name[:param]"`` → Statistic (the ``univmon query`` syntax).

        ``hh[:fraction]``, ``cardinality``/``f0``, ``l1``, ``l2``,
        ``f2``, ``entropy[:base]``, ``moment:p``.
        """
        name, _, param = spec.strip().partition(":")
        kind = cls._ALIASES.get(name.lower())
        if kind is None:
            raise ConfigurationError(
                f"unknown statistic {spec!r} (know: "
                f"{', '.join(sorted(set(cls._ALIASES)))})")
        if kind == "heavy_hitters":
            return cls.heavy_hitters(float(param) if param else 0.005)
        if kind == "entropy":
            base = math.e if param in ("e", "nats") \
                else (float(param) if param else 2.0)
            return cls.entropy(base)
        if kind == "moment":
            if not param:
                raise ConfigurationError(
                    "moment needs an order, e.g. 'moment:1.5'")
            return cls.moment(float(param))
        if param:
            raise ConfigurationError(
                f"statistic {name!r} takes no parameter (got {spec!r})")
        return getattr(cls, kind)()


#: The paper's §3.4 task set plus F2 — the default batch.
DEFAULT_STATISTICS: Tuple[Statistic, ...] = (
    Statistic.heavy_hitters(),
    Statistic.cardinality(),
    Statistic.l1(),
    Statistic.entropy(),
    Statistic.f2(),
)


class QueryMemo:
    """Bounded LRU of :meth:`QueryEngine.evaluate_many` results.

    Keyed on *(snapshot identity, statistic tuple)*: two batches over
    the same immutable snapshot asking for the same parsed statistics
    collapse to one evaluation — the memoisation the monitoring service
    relies on when hundreds of clients issue identical queries against
    one published epoch, and equally usable by any batch caller.

    Each entry pins its snapshot (a strong reference rides in the
    value), so ``id(snapshot)`` cannot be recycled while its key is
    live; eviction drops key and pin together.  Thread-safe: the
    service evaluates on the asyncio loop but scrapers and benchmarks
    may share a memo across threads.  Hit/miss/eviction counts are
    mirrored into ``univmon_query_memo_*``.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ConfigurationError(
                f"memo maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple[int, Tuple[Statistic, ...]], " \
            "Tuple[Any, Dict[str, Any]]]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, snapshot, stats: Tuple["Statistic", ...]) \
            -> Optional[Dict[str, Any]]:
        """The memoised results for this (snapshot, batch), or None."""
        key = (id(snapshot), stats)
        reg = get_registry()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            reg.counter("univmon_query_memo_misses_total",
                        help="memoised query lookups that missed").inc()
            return None
        reg.counter("univmon_query_memo_hits_total",
                    help="query batches served from the result memo").inc()
        return dict(entry[1])

    def put(self, snapshot, stats: Tuple["Statistic", ...],
            results: Dict[str, Any]) -> None:
        key = (id(snapshot), stats)
        evicted = 0
        with self._lock:
            self._entries[key] = (snapshot, dict(results))
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            get_registry().counter(
                "univmon_query_memo_evictions_total",
                help="memo entries evicted by the LRU bound").inc(evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class QueryEngine:
    """Batched, snapshot-sharing evaluation over one sketch.

    All statistics handed to :meth:`evaluate_many` are computed from a
    single :class:`QuerySnapshot`; when the sketch is a
    :class:`~repro.core.universal.UniversalSketch` the snapshot comes
    from its version-guarded cache, so interleaved scalar estimators
    (``estimate_entropy(sketch)`` from an app, say) reuse the same build.

    Pass a :class:`QueryMemo` to additionally collapse *repeated
    identical batches* over one snapshot into a single evaluation
    (results are cached per (snapshot, statistic tuple)); the memo can
    be shared across engines — the service shares one across all epochs
    in its ring.
    """

    def __init__(self, sketch, memo: Optional[QueryMemo] = None) -> None:
        self.sketch = sketch
        self.memo = memo

    def snapshot(self) -> QuerySnapshot:
        """This sketch state's snapshot (cached when the sketch caches)."""
        cached = getattr(self.sketch, "query_snapshot", None)
        if cached is not None:
            return cached()
        return QuerySnapshot.build(self.sketch)

    def warm(self) -> QuerySnapshot:
        """Build (or revalidate) the snapshot ahead of the first query."""
        return self.snapshot()

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, statistic: Statistic) -> Any:
        """One statistic through the snapshot path."""
        return self._evaluate(self.snapshot(), statistic)

    def evaluate_many(self, statistics: Iterable[Statistic] = None) \
            -> Dict[str, Any]:
        """Evaluate a batch of statistics from one snapshot, one pass.

        Returns ``{statistic.name: value}``; values are floats except
        G-core statistics, which yield ``[(key, weight), ...]`` lists.
        """
        stats: Sequence[Statistic] = tuple(
            DEFAULT_STATISTICS if statistics is None else statistics)
        reg = get_registry()
        reg.histogram("univmon_query_batch_size",
                      help="statistics per batched evaluation",
                      buckets=BATCH_SIZE_BUCKETS).observe(len(stats))
        reg.counter("univmon_query_statistics_total",
                    help="statistics evaluated through the batch "
                         "engine").inc(len(stats))
        with reg.span("univmon_query_batch_seconds",
                      help="snapshot build + batched evaluation latency"):
            snapshot = self.snapshot()
            if self.memo is not None:
                hit = self.memo.get(snapshot, stats)
                if hit is not None:
                    return hit
            results = {stat.name: self._evaluate(snapshot, stat)
                       for stat in stats}
            if self.memo is not None:
                self.memo.put(snapshot, stats, results)
            return results

    def _evaluate(self, snapshot: QuerySnapshot, stat: Statistic) -> Any:
        from repro.core import gsum as _gsum  # circular at import time
        if stat.kind == "gsum":
            _gsum._check(stat.g)
            value = snapshot.gsum(stat.g, min_weight=stat.min_weight)
            return max(0.0, value) if stat.clamp else value
        if stat.kind == "gcore":
            return snapshot.gcore(stat.fraction)
        if stat.kind == "entropy":
            return _gsum.entropy_from_snapshot(snapshot, base=stat.base)
        if stat.kind == "l2":
            return self.sketch.levels[0].sketch.l2_estimate()
        if stat.kind == "f2":
            return self.sketch.levels[0].sketch.f2_estimate()
        raise ConfigurationError(f"unknown statistic kind {stat.kind!r}")


__all__ = [
    "QuerySnapshot",
    "QueryEngine",
    "QueryMemo",
    "Statistic",
    "DEFAULT_STATISTICS",
    "BATCH_SIZE_BUCKETS",
]
