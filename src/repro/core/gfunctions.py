"""The g-function library and the Stream-PolyLog admissibility check.

Section 3.1 of the paper characterises the class of ``G-sum = sum g(f_i)``
statistics a universal sketch can estimate: *Stream-PolyLog*, informally
the monotone ``g`` upper-bounded by ``O(f**2)``.  This module provides

- :class:`GFunction`, a named, documented wrapper around the scalar ``g``;
- the stock functions for every task in Section 3.4 (heavy hitters,
  DDoS/distinct, change, entropy) plus F2;
- :func:`is_stream_polylog`, a numeric admissibility check used to refuse
  inadmissible functions (e.g. ``g = x**3``) before wasting a sketch on
  them, mirroring footnote 1's lower-bound caveat.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import NotSketchableError


@dataclass(frozen=True)
class GFunction:
    """A scalar ``g`` defining the statistic ``G-sum = sum_i g(f_i)``.

    Attributes
    ----------
    name:
        Human-readable identifier (used in reports and error messages).
    fn:
        The scalar function; must satisfy ``g(0) = 0`` so absent keys
        contribute nothing.
    description:
        What the statistic measures.
    stream_polylog:
        Whether the function is (claimed) a member of Stream-PolyLog.
        Stock functions set this from the theory; user functions can be
        validated numerically with :func:`is_stream_polylog`.
    """

    name: str
    fn: Callable[[float], float]
    description: str = ""
    stream_polylog: bool = True

    def __call__(self, x: float) -> float:
        return self.fn(x)

    def applied_to_magnitude(self, x: float) -> float:
        """``g(|x|)`` — used on difference streams whose "frequencies"
        (signed per-key deltas) may be negative."""
        return self.fn(abs(x))


def _g_identity(x: float) -> float:
    return float(x)


def _g_square(x: float) -> float:
    return float(x) * float(x)


def _g_abs(x: float) -> float:
    return abs(float(x))


def _g_zeroth(x: float) -> float:
    # x**0 with the streaming convention 0**0 = 0: counts distinct keys.
    return 1.0 if x > 0 else 0.0


def _g_xlogx_base2(x: float) -> float:
    if x <= 0:
        return 0.0
    return float(x) * math.log2(x)


def _g_xlogx_nats(x: float) -> float:
    if x <= 0:
        return 0.0
    return float(x) * math.log(x)


#: g(x) = x  →  G-sum = L1 (total traffic); G-core = heavy hitters (§3.4 HH).
IDENTITY = GFunction("identity", _g_identity,
                     "L1 / total volume; G-core gives heavy hitters")

#: g(x) = x**2  →  G-sum = F2, the boundary of Stream-PolyLog.
SQUARE = GFunction("square", _g_square, "second frequency moment F2")

#: g(x) = |x|  →  L1 of a (signed) difference stream (§3.4 Change Detection).
ABS = GFunction("abs", _g_abs, "L1 norm of a signed difference stream")

#: g(x) = x**0 (0↦0)  →  G-sum = F0 = #distinct keys (§3.4 DDoS).
CARDINALITY = GFunction("cardinality", _g_zeroth,
                        "distinct key count F0 (DDoS victim test)")

#: g(x) = x·log2(x)  →  S in H = log2(m) - S/m (§3.4 Entropy, bits).
ENTROPY_SUM = GFunction("entropy_sum", _g_xlogx_base2,
                        "sum f·log2 f, the entropy numerator (bits)")

#: Same in natural log, for nat-denominated entropy.
ENTROPY_NATS = GFunction("entropy_sum_nats", _g_xlogx_nats,
                         "sum f·ln f, the entropy numerator (nats)")


def is_stream_polylog(g: Callable[[float], float],
                      max_frequency: int = 1 << 20,
                      samples: int = 64,
                      bound_constant: float = 4.0) -> bool:
    """Numerically check the informal Stream-PolyLog membership criteria.

    Checks, over geometrically spaced sample frequencies up to
    ``max_frequency``:

    1. ``g(0) == 0`` (absent keys contribute nothing),
    2. ``g`` is non-negative and monotone non-decreasing,
    3. ``g(x) <= bound_constant * x**2`` for x >= 1 (the ``O(f**2)``
       upper bound; faster-growing g hit the lower bound of
       Chakrabarti-Khot-Sun and are not polylog-sketchable).

    This is a *necessary-condition* screen matching the paper's informal
    characterisation, not the full technical definition in Braverman &
    Ostrovsky 2010.
    """
    if g(0) != 0:
        return False
    xs = [1.0]
    ratio = max_frequency ** (1.0 / max(samples - 1, 1))
    while xs[-1] < max_frequency:
        xs.append(min(xs[-1] * max(ratio, 1.0 + 1e-9), float(max_frequency)))
    prev = 0.0
    for x in xs:
        v = g(x)
        if v < 0:
            return False
        if v < prev - 1e-9:
            return False
        if x >= 1 and v > bound_constant * x * x + 1e-9:
            return False
        prev = v
    return True


def require_stream_polylog(g: GFunction) -> None:
    """Raise :class:`NotSketchableError` if ``g`` fails the screen."""
    claimed = g.stream_polylog
    observed = is_stream_polylog(g.fn)
    if not (claimed and observed):
        raise NotSketchableError(
            f"g-function {g.name!r} is not in Stream-PolyLog "
            f"(claimed={claimed}, numeric check={observed}); no "
            f"polylogarithmic-space universal estimate exists for it")


def make_moment(p: float) -> GFunction:
    """``g(x) = x**p``.  Only ``0 <= p <= 2`` is Stream-PolyLog."""
    if p < 0:
        raise NotSketchableError(f"negative moments (p={p}) are out of scope")

    def fn(x: float) -> float:
        if x <= 0:
            return 0.0
        return float(x) ** p

    return GFunction(f"moment_{p:g}", fn, f"frequency moment F{p:g}",
                     stream_polylog=(p <= 2))
