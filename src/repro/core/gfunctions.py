"""The g-function library and the Stream-PolyLog admissibility check.

Section 3.1 of the paper characterises the class of ``G-sum = sum g(f_i)``
statistics a universal sketch can estimate: *Stream-PolyLog*, informally
the monotone ``g`` upper-bounded by ``O(f**2)``.  This module provides

- :class:`GFunction`, a named, documented wrapper around the scalar ``g``;
- the stock functions for every task in Section 3.4 (heavy hitters,
  DDoS/distinct, change, entropy) plus F2;
- :func:`is_stream_polylog`, a numeric admissibility check used to refuse
  inadmissible functions (e.g. ``g = x**3``) before wasting a sketch on
  them, mirroring footnote 1's lower-bound caveat.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.errors import NotSketchableError


@dataclass(frozen=True)
class GFunction:
    """A scalar ``g`` defining the statistic ``G-sum = sum_i g(f_i)``.

    Attributes
    ----------
    name:
        Human-readable identifier (used in reports and error messages).
    fn:
        The scalar function; must satisfy ``g(0) = 0`` so absent keys
        contribute nothing.  This is the *reference implementation*; the
        vectorised estimators are tested against it element by element.
    description:
        What the statistic measures.
    stream_polylog:
        Whether the function is (claimed) a member of Stream-PolyLog.
        Stock functions set this from the theory; user functions can be
        validated numerically with :func:`is_stream_polylog`.
    vec:
        Optional NumPy path: maps a ``float64`` array elementwise to
        ``g`` of it.  Stock functions ship one; user functions without
        it fall back to a (cached) ``np.vectorize`` of ``fn``, so every
        g works with the array estimators — a native ``vec`` is purely
        a speed upgrade.
    """

    name: str
    fn: Callable[[float], float]
    description: str = ""
    stream_polylog: bool = True
    vec: Optional[Callable[[np.ndarray], np.ndarray]] = None

    def __call__(self, x: float) -> float:
        return self.fn(x)

    def applied_to_magnitude(self, x: float) -> float:
        """``g(|x|)`` — used on difference streams whose "frequencies"
        (signed per-key deltas) may be negative."""
        return self.fn(abs(x))

    def apply_array(self, xs: np.ndarray) -> np.ndarray:
        """Elementwise ``g`` over a ``float64`` array (the NumPy path).

        Uses :attr:`vec` when present; otherwise a ``np.vectorize`` of
        the scalar ``fn``, built once per GFunction and cached.
        """
        xs = np.asarray(xs, dtype=np.float64)
        if self.vec is not None:
            return np.asarray(self.vec(xs), dtype=np.float64)
        vfn = self.__dict__.get("_np_fallback")
        if vfn is None:
            vfn = np.vectorize(self.fn, otypes=[np.float64])
            object.__setattr__(self, "_np_fallback", vfn)
        return vfn(xs)


def _g_identity(x: float) -> float:
    return float(x)


def _g_square(x: float) -> float:
    return float(x) * float(x)


def _g_abs(x: float) -> float:
    return abs(float(x))


def _g_zeroth(x: float) -> float:
    # x**0 with the streaming convention 0**0 = 0: counts distinct keys.
    return 1.0 if x > 0 else 0.0


def _g_xlogx_base2(x: float) -> float:
    if x <= 0:
        return 0.0
    return float(x) * math.log2(x)


def _g_xlogx_nats(x: float) -> float:
    if x <= 0:
        return 0.0
    return float(x) * math.log(x)


# Vectorised twins of the scalar g's above.  Each masks the x <= 0 case
# the same way its scalar sibling special-cases it, so the two paths
# agree elementwise (up to libm rounding of log/pow).

def _gv_identity(xs: np.ndarray) -> np.ndarray:
    return xs


def _gv_square(xs: np.ndarray) -> np.ndarray:
    return xs * xs


def _gv_abs(xs: np.ndarray) -> np.ndarray:
    return np.abs(xs)


def _gv_zeroth(xs: np.ndarray) -> np.ndarray:
    return (xs > 0).astype(np.float64)


def _gv_xlogx_base2(xs: np.ndarray) -> np.ndarray:
    out = np.zeros_like(xs)
    mask = xs > 0
    vals = xs[mask]
    out[mask] = vals * np.log2(vals)
    return out


def _gv_xlogx_nats(xs: np.ndarray) -> np.ndarray:
    out = np.zeros_like(xs)
    mask = xs > 0
    vals = xs[mask]
    out[mask] = vals * np.log(vals)
    return out


#: g(x) = x  →  G-sum = L1 (total traffic); G-core = heavy hitters (§3.4 HH).
IDENTITY = GFunction("identity", _g_identity,
                     "L1 / total volume; G-core gives heavy hitters",
                     vec=_gv_identity)

#: g(x) = x**2  →  G-sum = F2, the boundary of Stream-PolyLog.
SQUARE = GFunction("square", _g_square, "second frequency moment F2",
                   vec=_gv_square)

#: g(x) = |x|  →  L1 of a (signed) difference stream (§3.4 Change Detection).
ABS = GFunction("abs", _g_abs, "L1 norm of a signed difference stream",
                vec=_gv_abs)

#: g(x) = x**0 (0↦0)  →  G-sum = F0 = #distinct keys (§3.4 DDoS).
CARDINALITY = GFunction("cardinality", _g_zeroth,
                        "distinct key count F0 (DDoS victim test)",
                        vec=_gv_zeroth)

#: g(x) = x·log2(x)  →  S in H = log2(m) - S/m (§3.4 Entropy, bits).
ENTROPY_SUM = GFunction("entropy_sum", _g_xlogx_base2,
                        "sum f·log2 f, the entropy numerator (bits)",
                        vec=_gv_xlogx_base2)

#: Same in natural log, for nat-denominated entropy.
ENTROPY_NATS = GFunction("entropy_sum_nats", _g_xlogx_nats,
                         "sum f·ln f, the entropy numerator (nats)",
                         vec=_gv_xlogx_nats)


def is_stream_polylog(g: Callable[[float], float],
                      max_frequency: int = 1 << 20,
                      samples: int = 64,
                      bound_constant: float = 4.0) -> bool:
    """Numerically check the informal Stream-PolyLog membership criteria.

    Checks, over geometrically spaced sample frequencies up to
    ``max_frequency``:

    1. ``g(0) == 0`` (absent keys contribute nothing),
    2. ``g`` is non-negative and monotone non-decreasing,
    3. ``g(x) <= bound_constant * x**2`` for x >= 1 (the ``O(f**2)``
       upper bound; faster-growing g hit the lower bound of
       Chakrabarti-Khot-Sun and are not polylog-sketchable).

    This is a *necessary-condition* screen matching the paper's informal
    characterisation, not the full technical definition in Braverman &
    Ostrovsky 2010.
    """
    if g(0) != 0:
        return False
    xs = [1.0]
    ratio = max_frequency ** (1.0 / max(samples - 1, 1))
    while xs[-1] < max_frequency:
        xs.append(min(xs[-1] * max(ratio, 1.0 + 1e-9), float(max_frequency)))
    prev = 0.0
    for x in xs:
        v = g(x)
        if v < 0:
            return False
        if v < prev - 1e-9:
            return False
        if x >= 1 and v > bound_constant * x * x + 1e-9:
            return False
        prev = v
    return True


def require_stream_polylog(g: GFunction) -> None:
    """Raise :class:`NotSketchableError` if ``g`` fails the screen."""
    claimed = g.stream_polylog
    observed = is_stream_polylog(g.fn)
    if not (claimed and observed):
        raise NotSketchableError(
            f"g-function {g.name!r} is not in Stream-PolyLog "
            f"(claimed={claimed}, numeric check={observed}); no "
            f"polylogarithmic-space universal estimate exists for it")


@functools.lru_cache(maxsize=64)
def make_moment(p: float) -> GFunction:
    """``g(x) = x**p``.  Only ``0 <= p <= 2`` is Stream-PolyLog.

    Memoised: repeated requests for the same order share one (immutable)
    GFunction, so downstream identity-keyed caches — the Stream-PolyLog
    validation cache, a snapshot's per-g values — hit across epochs.
    """
    if p < 0:
        raise NotSketchableError(f"negative moments (p={p}) are out of scope")

    def fn(x: float) -> float:
        if x <= 0:
            return 0.0
        return float(x) ** p

    def vec(xs: np.ndarray, _p: float = p) -> np.ndarray:
        out = np.zeros_like(xs)
        mask = xs > 0
        out[mask] = xs[mask] ** _p
        return out

    return GFunction(f"moment_{p:g}", fn, f"frequency moment F{p:g}",
                     stream_polylog=(p <= 2), vec=vec)
