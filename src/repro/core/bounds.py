"""Analytic error bounds for the sketch geometries.

The paper's argument for sketching over generic sampling is that
sketches come with *provable* resource-accuracy trade-offs.  This module
states those trade-offs as code, so configurations can be sized from a
target error instead of folklore, and so tests can check the
implementations against their own theory.

All bounds are the standard ones:

- Count Sketch: per-row standard error ``L2 / sqrt(width)``; with
  ``rows`` rows and the median rule,
  ``P(|err| > e) <= delta`` for ``width = O(1/e**2)``,
  ``rows = O(log 1/delta)``.
- Count-Min: overestimate ``<= e * L1 / width`` with probability
  ``1 - (1/e)**rows`` (e = Euler's number here).
- Linear counting: std error ``~ sqrt(m*(exp(t) - t - 1)) / (t*m)``
  with ``t = n/m``.
- HyperLogLog: relative std error ``~ 1.04 / sqrt(m)``.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def count_sketch_error(width: int, rows: int, l2: float,
                       confidence: float = 0.95) -> float:
    """High-probability point-query error bound of a Count Sketch.

    Returns ``e`` such that ``P(|estimate - f| > e) <= 1 - confidence``
    for the median of ``rows`` independent rows, each with standard
    deviation ``l2 / sqrt(width)`` (Chebyshev per row + Chernoff on the
    median; the constant 3 below is the usual practical bound).
    """
    if width < 1 or rows < 1:
        raise ConfigurationError("width and rows must be >= 1")
    per_row_std = l2 / math.sqrt(width)
    # Median of r rows: failure prob 2**(-r/3) at 3 sigma per row.
    failure = 2.0 ** (-rows / 3.0)
    if failure > 1 - confidence:
        # Need wider per-row interval to meet the confidence target.
        scale = 3.0 * math.sqrt((1 - confidence) / failure) ** -1
    else:
        scale = 3.0
    return scale * per_row_std


def count_sketch_width_for(epsilon: float, l2: float) -> int:
    """Width so the per-row standard error is ``epsilon * l2``."""
    if not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must be in (0,1), got {epsilon}")
    return max(1, math.ceil(1.0 / (epsilon * epsilon)))


def count_min_error(width: int, rows: int, l1: float) -> float:
    """Expected-overestimate bound of a Count-Min point query:
    ``e * L1 / width`` holds with probability ``1 - e**-rows``."""
    if width < 1 or rows < 1:
        raise ConfigurationError("width and rows must be >= 1")
    return math.e * l1 / width


def count_min_geometry_for(epsilon: float, delta: float) -> tuple:
    """The classic ``(rows, width)`` for an (epsilon, delta) guarantee."""
    if not 0 < epsilon < 1 or not 0 < delta < 1:
        raise ConfigurationError("epsilon and delta must be in (0,1)")
    width = math.ceil(math.e / epsilon)
    rows = math.ceil(math.log(1.0 / delta))
    return rows, width


def linear_counting_std_error(bits: int, cardinality: int) -> float:
    """Relative standard error of an m-bit linear counter at n keys."""
    if bits < 1:
        raise ConfigurationError("bits must be >= 1")
    if cardinality <= 0:
        return 0.0
    t = cardinality / bits
    return math.sqrt(bits * (math.exp(t) - t - 1)) / (t * bits)


def hyperloglog_std_error(precision: int) -> float:
    """Relative standard error of HLL at ``2**precision`` registers."""
    if not 4 <= precision <= 18:
        raise ConfigurationError("precision must be in [4, 18]")
    return 1.04 / math.sqrt(1 << precision)


def universal_sketch_levels(expected_distinct: int, heap_size: int) -> int:
    """The log(n) rule restated: levels so the deepest substream's
    expected distinct count drops below the heap size."""
    if expected_distinct < 1 or heap_size < 1:
        raise ConfigurationError("arguments must be >= 1")
    if expected_distinct <= heap_size:
        return 1
    return math.ceil(math.log2(expected_distinct / heap_size)) + 1
