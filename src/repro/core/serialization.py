"""Sketch (de)serialization — the wire format of the poll protocol.

The controller "periodically retrieves the counters being maintained by
the data plane"; in any real deployment those counters cross a network.
This module defines a compact, versioned binary encoding for the
sketches the poll loop ships:

- header: magic ``b"UMS1"`` + a type tag,
- fixed little-endian struct fields for the geometry and seed,
- raw numpy counter blocks,
- heaps as ``(key, estimate)`` arrays.

Only seeded sketches can be serialized: the hash functions are *not*
shipped (they are large and derivable), so the receiver reconstructs
them from the seed — which is also what keeps the format compact enough
for a 5-second polling cadence.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Union

import numpy as np

from repro.errors import ConfigurationError, TraceFormatError
from repro.core.level import SketchLevel
from repro.core.universal import UniversalSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.kary import KArySketch
from repro.sketches.topk import TopK

_MAGIC = b"UMS1"

_TYPE_COUNT_SKETCH = 1
_TYPE_COUNT_MIN = 2
_TYPE_KARY = 3
_TYPE_UNIVERSAL = 4

# Sanity ceilings for deserialized geometry.  A corrupt or hostile header
# must not translate into a multi-gigabyte allocation or a numpy reshape
# traceback; anything outside these bounds is rejected as a format error.
# The largest geometry the experiments use is orders of magnitude smaller.
# Shared with :mod:`repro.network.codec`, whose delta frames carry the
# same geometry fields and face the same hostile inputs.
MAX_LEVELS = 64
MAX_ROWS = 512
MAX_WIDTH = 1 << 24
MAX_HEAP = 1 << 20

# Backwards-compatible private aliases.
_MAX_LEVELS = MAX_LEVELS
_MAX_ROWS = MAX_ROWS
_MAX_WIDTH = MAX_WIDTH
_MAX_HEAP = MAX_HEAP


def _check_range(name: str, value: int, lo: int, hi: int) -> int:
    if not lo <= value <= hi:
        raise TraceFormatError(
            f"corrupt sketch payload: {name}={value} outside [{lo}, {hi}]")
    return value


def check_geometry(levels: int, rows: int, width: int,
                   heap_size: int) -> None:
    """Reject universal-sketch geometry outside the sanity ceilings.

    Raises :class:`~repro.errors.TraceFormatError` — the caller decides
    whether that means a corrupt file or a hostile peer.
    """
    _check_range("levels", levels, 0, MAX_LEVELS)
    _check_range("rows", rows, 1, MAX_ROWS)
    _check_range("width", width, 1, MAX_WIDTH)
    _check_range("heap_size", heap_size, 1, MAX_HEAP)


def _require_seed(sketch) -> int:
    if sketch.seed is None:
        raise ConfigurationError(
            f"{type(sketch).__name__} must have an explicit seed to be "
            f"serialized (hash functions are reconstructed from it)")
    return int(sketch.seed)


def _write_table(out: BinaryIO, table: np.ndarray) -> None:
    data = np.ascontiguousarray(table, dtype=np.int64).tobytes()
    out.write(struct.pack("<I", len(data)))
    out.write(data)


def _read_table(buf: BinaryIO, rows: int, width: int) -> np.ndarray:
    (nbytes,) = struct.unpack("<I", _read_exact(buf, 4))
    expected = rows * width * 8
    if nbytes != expected:
        raise TraceFormatError(
            f"corrupt sketch payload: table block is {nbytes} bytes, "
            f"expected {expected} for {rows}x{width} int64 counters")
    raw = _read_exact(buf, nbytes)
    table = np.frombuffer(raw, dtype=np.int64).reshape(rows, width).copy()
    return table


def _read_exact(buf: BinaryIO, n: int) -> bytes:
    data = buf.read(n)
    if len(data) != n:
        raise TraceFormatError(
            f"truncated sketch payload: wanted {n} bytes, got {len(data)}")
    return data


def _write_topk(out: BinaryIO, topk: TopK) -> None:
    items = topk.items()
    out.write(struct.pack("<II", topk.capacity, len(items)))
    for key, estimate in items:
        out.write(struct.pack("<Qd", key, estimate))


def _read_topk(buf: BinaryIO) -> TopK:
    capacity, count = struct.unpack("<II", _read_exact(buf, 8))
    _check_range("heap capacity", capacity, 1, _MAX_HEAP)
    if count > capacity:
        raise TraceFormatError(
            f"corrupt sketch payload: heap holds {count} items but its "
            f"capacity is {capacity}")
    topk = TopK(capacity)
    for _ in range(count):
        key, estimate = struct.unpack("<Qd", _read_exact(buf, 16))
        topk.offer(key, estimate)
    return topk


# --------------------------------------------------------------------- #
# per-type encoders
# --------------------------------------------------------------------- #

def _dump_count_sketch(out: BinaryIO, sketch: CountSketch,
                       type_tag: int) -> None:
    out.write(_MAGIC)
    out.write(struct.pack("<BIIq", type_tag, sketch.rows, sketch.width,
                          _require_seed(sketch)))
    _write_table(out, sketch.table)


def _load_tableau(buf: BinaryIO, cls, type_name: str):
    rows, width, seed = struct.unpack("<IIq", _read_exact(buf, 16))
    _check_range("rows", rows, 1, _MAX_ROWS)
    _check_range("width", width, 1, _MAX_WIDTH)
    sketch = cls(rows=rows, width=width, seed=seed)
    sketch.table = _read_table(buf, rows, width)
    return sketch


def _dump_universal(out: BinaryIO, sketch: UniversalSketch) -> None:
    out.write(_MAGIC)
    out.write(struct.pack(
        "<BIIIIqq", _TYPE_UNIVERSAL, sketch.num_levels, sketch.rows,
        sketch.width, sketch.heap_size, _require_seed(sketch),
        sketch.packets))
    for level in sketch.levels:
        out.write(struct.pack("<qq", level.packets, level.weight))
        _write_table(out, level.sketch.table)
        _write_topk(out, level.topk)


def _load_universal(buf: BinaryIO) -> UniversalSketch:
    levels, rows, width, heap_size, seed, packets = struct.unpack(
        "<IIIIqq", _read_exact(buf, 32))
    check_geometry(levels, rows, width, heap_size)
    if packets < 0:
        raise TraceFormatError(
            f"corrupt sketch payload: negative packet count {packets}")
    sketch = UniversalSketch(levels=levels, rows=rows, width=width,
                             heap_size=heap_size, seed=seed)
    sketch.packets = packets
    for level in sketch.levels:
        level.packets, level.weight = struct.unpack(
            "<qq", _read_exact(buf, 16))
        level.sketch.table = _read_table(buf, rows, width)
        level.topk = _read_topk(buf)
    return sketch


# --------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------- #

def dumps(sketch) -> bytes:
    """Serialize a seeded sketch to bytes."""
    out = io.BytesIO()
    if isinstance(sketch, UniversalSketch):
        _dump_universal(out, sketch)
    elif isinstance(sketch, CountSketch):
        _dump_count_sketch(out, sketch, _TYPE_COUNT_SKETCH)
    elif isinstance(sketch, CountMinSketch):
        if sketch.conservative:
            raise ConfigurationError(
                "conservative CountMin carries no extra state but is "
                "flagged non-linear; serialize the plain variant")
        _dump_count_sketch(out, sketch, _TYPE_COUNT_MIN)
    elif isinstance(sketch, KArySketch):
        _dump_count_sketch(out, sketch, _TYPE_KARY)
    else:
        raise ConfigurationError(
            f"no serializer for {type(sketch).__name__}")
    return out.getvalue()


def loads(data: Union[bytes, bytearray]):
    """Reconstruct a sketch serialized by :func:`dumps`.

    Truncated or corrupt payloads raise :class:`TraceFormatError` — never
    a raw ``struct.error`` or numpy reshape traceback — so transport
    layers can treat any decode failure uniformly.
    """
    buf = io.BytesIO(bytes(data))
    magic = buf.read(4)
    if magic != _MAGIC:
        raise TraceFormatError(f"bad sketch magic {magic!r}")
    try:
        (type_tag,) = struct.unpack("<B", _read_exact(buf, 1))
        if type_tag == _TYPE_UNIVERSAL:
            return _load_universal(buf)
        if type_tag == _TYPE_COUNT_SKETCH:
            return _load_tableau(buf, CountSketch, "CountSketch")
        if type_tag == _TYPE_COUNT_MIN:
            return _load_tableau(buf, CountMinSketch, "CountMinSketch")
        if type_tag == _TYPE_KARY:
            return _load_tableau(buf, KArySketch, "KArySketch")
    except (struct.error, ValueError, OverflowError) as exc:
        raise TraceFormatError(f"corrupt sketch payload: {exc}") from exc
    raise TraceFormatError(f"unknown sketch type tag {type_tag}")
