"""UnivMon's control plane — the Recursive Sum estimator (Algorithm 2).

Given the per-level heavy hitter sets ``Q_j`` (key, ``w_j(key)`` pairs)
collected by :class:`~repro.core.universal.UniversalSketch`, the estimator
computes, for any Stream-PolyLog g,

    Y_L     = sum_{i in Q'_L} g(w_L(i))
    Y_j     = 2 * Y_{j+1} + sum_{i in Q'_j} (1 - 2*h_{j+1}(i)) * g(w_j(i))
    G-sum  ~= Y_0

where ``h_{j+1}(i)`` is the sampling bit that decides whether key ``i``
advances from substream ``D_j`` to ``D_{j+1}``.  Intuition: ``2*Y_{j+1}``
scales the sampled half back up; the correction term replaces the doubled
contribution of keys that *did* advance (bit = 1, factor ``1-2 = -1``) with
the directly-observed contribution of keys that did not (bit = 0, factor
``+1``).  This is the Recursive Sum of Braverman & Ostrovsky 2013.

All estimators apply ``g`` to the *magnitude* of the Count Sketch
estimate: on insert-only streams estimates are already ≈ positive, and on
difference streams the "frequency" of a key is the magnitude of its delta.
"""

from __future__ import annotations

import math
import weakref
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import get_registry
from repro.core.gfunctions import (
    ABS,
    CARDINALITY,
    ENTROPY_NATS,
    ENTROPY_SUM,
    IDENTITY,
    GFunction,
    make_moment,
    require_stream_polylog,
)


def _query_span(op: str):
    """Latency span for one control-plane estimate (no-op by default).

    Spans live here — on the public estimators — rather than on the
    :class:`~repro.core.universal.UniversalSketch` wrapper methods, so
    the apps (which call these functions directly) and the sketch
    methods record into the same ``op=`` series exactly once.
    """
    return get_registry().span("univmon_sketch_query_seconds",
                               help="control-plane estimate latency", op=op)

# Validation cache keyed by g-function *identity* (id -> weakref).  Keying
# by name let a user-defined GFunction reuse a stock name (e.g.
# "identity") and silently skip validation; the weakref guards against a
# recycled id() after the original object is collected.
_VALIDATED: Dict[int, "weakref.ref[GFunction]"] = {}


def _check(g: GFunction) -> None:
    """Validate Stream-PolyLog membership once per g-function object."""
    ref = _VALIDATED.get(id(g))
    if ref is not None and ref() is g:
        return
    require_stream_polylog(g)
    _VALIDATED[id(g)] = weakref.ref(
        g, lambda _ref, _key=id(g): _VALIDATED.pop(_key, None))


def estimate_gsum(sketch, g: GFunction,
                  min_weight: float = 0.5) -> float:
    """Algorithm 2: unbiased estimate of ``G-sum = sum_i g(f_i)``.

    Parameters
    ----------
    sketch:
        A :class:`~repro.core.universal.UniversalSketch` (or anything with
        ``.levels`` and ``.sampler``).
    g:
        The statistic's g-function; must be in Stream-PolyLog.
    min_weight:
        Heap entries with ``|w| < min_weight`` are treated as noise and
        skipped (a key actually present has true frequency >= 1).
    """
    _check(g)
    levels = sketch.levels
    sampler = sketch.sampler
    deepest = len(levels) - 1

    def gval(w: float) -> float:
        mag = abs(w)
        if mag < min_weight:
            return 0.0
        return g(mag)

    y = sum(gval(w) for _, w in levels[deepest].heavy_hitters())
    for j in range(deepest - 1, -1, -1):
        correction = 0.0
        for key, w in levels[j].heavy_hitters():
            bit = sampler.bit(j + 1, key)
            correction += (1 - 2 * bit) * gval(w)
        y = 2.0 * y + correction
    return y


def g_core(sketch, fraction: float,
           total: Optional[float] = None) -> List[Tuple[int, float]]:
    """G-core for g(x)=x: the keys estimated above ``fraction * total``.

    ``total`` defaults to the stream weight the sketch observed (heavy
    hitters); pass the estimated total change when ``sketch`` is a
    difference sketch (heavy changes).
    """
    with _query_span("heavy_hitters"):
        if total is None:
            total = float(sketch.total_weight)
        threshold = fraction * total
        q0 = sketch.levels[0].heavy_hitters()
        return [(key, w) for key, w in q0 if abs(w) >= threshold]


def estimate_cardinality(sketch) -> float:
    """F0 (# distinct keys) via ``g(x) = x**0`` — the DDoS primitive."""
    with _query_span("cardinality"):
        return max(0.0, estimate_gsum(sketch, CARDINALITY))


def estimate_l1(sketch) -> float:
    """L1 norm via ``g(x) = |x|``.

    On an insert-only sketch this re-derives the stream weight (a useful
    self-check); on a difference sketch it estimates the total change D.
    """
    with _query_span("l1"):
        return max(0.0, estimate_gsum(sketch, ABS))


def estimate_l2(sketch) -> float:
    """L2 norm straight off the level-0 Count Sketch (no recursion needed;
    F2 is what Count Sketch natively estimates)."""
    with _query_span("l2"):
        return sketch.levels[0].sketch.l2_estimate()


def estimate_f2(sketch) -> float:
    """Second frequency moment from the level-0 Count Sketch."""
    with _query_span("f2"):
        return sketch.levels[0].sketch.f2_estimate()


# One GFunction per entropy log-base: rebuilding the lambda per call both
# wasted work and (with an identity-keyed validation cache) re-validated
# the same g on every estimate.
_ENTROPY_BASE: Dict[float, GFunction] = {}


def _entropy_gfunction(base: float) -> GFunction:
    g = _ENTROPY_BASE.get(base)
    if g is None:
        g = GFunction(
            f"entropy_sum_base{base:g}",
            lambda x, _b=base: 0.0 if x <= 0 else x * math.log(x) / math.log(_b),
            stream_polylog=True)
        _ENTROPY_BASE[base] = g
    return g


def estimate_entropy(sketch, base: float = 2.0) -> float:
    """Shannon entropy ``H = log m - S/m`` with ``S = sum f log f`` (§3.4).

    The result is clamped to the feasible range ``[0, log m]`` (entropy
    is maximised by the uniform stream, whose ``m`` elements cannot
    spread over more than ``m`` distinct keys).
    """
    with _query_span("entropy"):
        m = float(sketch.total_weight)
        if m <= 0:
            return 0.0
        if base == 2.0:
            g = ENTROPY_SUM
            log_m = math.log2(m)
        else:
            log_m = math.log(m) / math.log(base)
            g = ENTROPY_NATS if base == math.e else _entropy_gfunction(base)
        s = estimate_gsum(sketch, g)
        h = log_m - s / m
        return min(max(h, 0.0), log_m)


def estimate_moment(sketch, p: float) -> float:
    """Frequency moment ``F_p = sum f_i**p`` for ``0 <= p <= 2``."""
    with _query_span("moment"):
        return max(0.0, estimate_gsum(sketch, make_moment(p)))


def heavy_changes(sketch_a, sketch_b, phi: float,
                  min_change: float = 1.0) -> Tuple[List[Tuple[int, float]], float]:
    """Change detection between two epochs (§3.4).

    Subtracts the epoch sketches (Count Sketch linearity), estimates the
    total change ``D`` with ``g(x)=|x|``, and returns the candidate keys
    whose estimated |delta| is at least ``phi * D``, plus D itself.

    Returns
    -------
    (changes, total_change):
        ``changes`` is a list of ``(key, signed_delta_estimate)`` sorted
        by magnitude; ``total_change`` is the estimated D.
    """
    with _query_span("heavy_changes"):
        diff = sketch_a.subtract(sketch_b)
        # estimate_gsum directly (not estimate_l1): one span per query.
        total = max(0.0, estimate_gsum(diff, ABS))
        if total <= 0:
            return [], 0.0
        threshold = max(phi * total, min_change)
        q0 = diff.levels[0].heavy_hitters()
        changes = [(key, w) for key, w in q0 if abs(w) >= threshold]
        return changes, total


__all__ = [
    "estimate_gsum",
    "g_core",
    "estimate_cardinality",
    "estimate_l1",
    "estimate_l2",
    "estimate_f2",
    "estimate_entropy",
    "estimate_moment",
    "heavy_changes",
    "IDENTITY",
]
