"""UnivMon's control plane — the Recursive Sum estimator (Algorithm 2).

Given the per-level heavy hitter sets ``Q_j`` (key, ``w_j(key)`` pairs)
collected by :class:`~repro.core.universal.UniversalSketch`, the estimator
computes, for any Stream-PolyLog g,

    Y_L     = sum_{i in Q'_L} g(w_L(i))
    Y_j     = 2 * Y_{j+1} + sum_{i in Q'_j} (1 - 2*h_{j+1}(i)) * g(w_j(i))
    G-sum  ~= Y_0

where ``h_{j+1}(i)`` is the sampling bit that decides whether key ``i``
advances from substream ``D_j`` to ``D_{j+1}``.  Intuition: ``2*Y_{j+1}``
scales the sampled half back up; the correction term replaces the doubled
contribution of keys that *did* advance (bit = 1, factor ``1-2 = -1``) with
the directly-observed contribution of keys that did not (bit = 0, factor
``+1``).  This is the Recursive Sum of Braverman & Ostrovsky 2013.

All estimators apply ``g`` to the *magnitude* of the Count Sketch
estimate: on insert-only streams estimates are already ≈ positive, and on
difference streams the "frequency" of a key is the magnitude of its delta.

Since the query-engine rewrite, every estimator runs Recursive Sum as
array reductions over a :class:`~repro.core.query.QuerySnapshot` — the
per-level heaps and sampling bits materialised once per sketch state and
cached (on :class:`~repro.core.universal.UniversalSketch`) behind a
mutation version counter, so all apps polling the same sealed sketch
share one build.  :func:`estimate_gsum_scalar` keeps the original scalar
loop as the tested reference implementation.
"""

from __future__ import annotations

import math
import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import List, Optional, Tuple

import numpy as np

from repro.obs.metrics import get_registry
from repro.core.gfunctions import (
    ABS,
    CARDINALITY,
    ENTROPY_NATS,
    ENTROPY_SUM,
    IDENTITY,
    GFunction,
    make_moment,
    require_stream_polylog,
)
from repro.core.query import QuerySnapshot

_SPAN_STATE = threading.local()


@contextmanager
def _query_span(op: str):
    """Latency span for one control-plane estimate (no-op by default).

    Spans live here — on the public estimators — rather than on the
    :class:`~repro.core.universal.UniversalSketch` wrapper methods, so
    the apps (which call these functions directly) and the sketch
    methods record into the same ``op=`` series exactly once.

    Nested estimates are guarded: :func:`estimate_gsum` records its own
    ``op="gsum"`` span when called directly, but when it runs inside a
    named wrapper (``estimate_entropy``, ``heavy_changes``, …) only the
    outermost span observes, keeping "one span per estimate" true on
    every path.
    """
    if getattr(_SPAN_STATE, "depth", 0):
        yield
        return
    _SPAN_STATE.depth = 1
    try:
        with get_registry().span("univmon_sketch_query_seconds",
                                 help="control-plane estimate latency",
                                 op=op):
            yield
    finally:
        _SPAN_STATE.depth = 0


# Validation cache keyed by g-function *identity* (id -> weakref).  Keying
# by name let a user-defined GFunction reuse a stock name (e.g.
# "identity") and silently skip validation; the weakref guards against a
# recycled id() after the original object is collected, and its callback
# drops the entry as soon as the g-function dies.  The LRU bound is a
# backstop for the pathological case of many *live* transient g-functions:
# the cache can then forget (and later re-validate) the oldest, but it can
# never grow past ``_VALIDATED_MAX`` entries.
_VALIDATED: "OrderedDict[int, weakref.ref]" = OrderedDict()
_VALIDATED_MAX = 256


def _check(g: GFunction) -> None:
    """Validate Stream-PolyLog membership once per g-function object."""
    ref = _VALIDATED.get(id(g))
    if ref is not None and ref() is g:
        _VALIDATED.move_to_end(id(g))
        return
    require_stream_polylog(g)
    _VALIDATED[id(g)] = weakref.ref(
        g, lambda _ref, _key=id(g): _VALIDATED.pop(_key, None))
    while len(_VALIDATED) > _VALIDATED_MAX:
        _VALIDATED.popitem(last=False)


def snapshot_of(sketch) -> QuerySnapshot:
    """The sketch state's :class:`QuerySnapshot`.

    Uses the sketch's version-guarded cache when it has one
    (:meth:`UniversalSketch.query_snapshot`); duck-typed sketches get an
    uncached build.
    """
    cached = getattr(sketch, "query_snapshot", None)
    if cached is not None:
        return cached()
    return QuerySnapshot.build(sketch)


def estimate_gsum(sketch, g: GFunction,
                  min_weight: float = 0.5) -> float:
    """Algorithm 2: unbiased estimate of ``G-sum = sum_i g(f_i)``.

    Runs the Recursive Sum as array reductions over the sketch state's
    snapshot; numerically equivalent to the scalar reference
    (:func:`estimate_gsum_scalar`), which walks the heaps one key at a
    time.

    Parameters
    ----------
    sketch:
        A :class:`~repro.core.universal.UniversalSketch` (or anything with
        ``.levels`` and ``.sampler``).
    g:
        The statistic's g-function; must be in Stream-PolyLog.
    min_weight:
        Heap entries with ``|w| < min_weight`` are treated as noise and
        skipped (a key actually present has true frequency >= 1).
    """
    _check(g)
    with _query_span("gsum"):
        return snapshot_of(sketch).gsum(g, min_weight=min_weight)


def estimate_gsum_scalar(sketch, g: GFunction,
                         min_weight: float = 0.5) -> float:
    """The original scalar Recursive Sum — the reference implementation.

    One ``g`` call and one sampling-bit hash per heavy hitter per level.
    Kept (and property-tested against :func:`estimate_gsum`) as the
    ground truth the vectorised path must match; also the baseline the
    query-latency benchmark measures speedups against.
    """
    _check(g)
    levels = sketch.levels
    sampler = sketch.sampler
    deepest = len(levels) - 1

    def gval(w: float) -> float:
        mag = abs(w)
        if mag < min_weight:
            return 0.0
        return g(mag)

    y = sum(gval(w) for _, w in levels[deepest].heavy_hitters())
    for j in range(deepest - 1, -1, -1):
        correction = 0.0
        for key, w in levels[j].heavy_hitters():
            bit = sampler.bit(j + 1, key)
            correction += (1 - 2 * bit) * gval(w)
        y = 2.0 * y + correction
    return y


def g_core(sketch, fraction: float,
           total: Optional[float] = None) -> List[Tuple[int, float]]:
    """G-core for g(x)=x: the keys estimated above ``fraction * total``.

    ``total`` defaults to the stream weight the sketch observed (heavy
    hitters); pass the estimated total change when ``sketch`` is a
    difference sketch (heavy changes).
    """
    with _query_span("heavy_hitters"):
        snapshot = snapshot_of(sketch)
        if total is None:
            total = snapshot.total_weight
        return snapshot.gcore(fraction, total=total)


def estimate_cardinality(sketch) -> float:
    """F0 (# distinct keys) via ``g(x) = x**0`` — the DDoS primitive."""
    with _query_span("cardinality"):
        return max(0.0, estimate_gsum(sketch, CARDINALITY))


def estimate_l1(sketch) -> float:
    """L1 norm via ``g(x) = |x|``.

    On an insert-only sketch this re-derives the stream weight (a useful
    self-check); on a difference sketch it estimates the total change D.
    """
    with _query_span("l1"):
        return max(0.0, estimate_gsum(sketch, ABS))


def estimate_l2(sketch) -> float:
    """L2 norm straight off the level-0 Count Sketch (no recursion needed;
    F2 is what Count Sketch natively estimates)."""
    with _query_span("l2"):
        return sketch.levels[0].sketch.l2_estimate()


def estimate_f2(sketch) -> float:
    """Second frequency moment from the level-0 Count Sketch."""
    with _query_span("f2"):
        return sketch.levels[0].sketch.f2_estimate()


# One GFunction per entropy log-base: rebuilding the lambda per call both
# wasted work and (with an identity-keyed validation cache) re-validated
# the same g on every estimate.  Bounded LRU: a workload cycling through
# many distinct bases (or sweeping bases programmatically) recycles the
# oldest entry instead of growing the cache forever.
_ENTROPY_BASE: "OrderedDict[float, GFunction]" = OrderedDict()
_ENTROPY_BASE_MAX = 8


def _entropy_gfunction(base: float) -> GFunction:
    g = _ENTROPY_BASE.get(base)
    if g is None:
        log_base = math.log(base)

        def vec(xs: np.ndarray, _lb: float = log_base) -> np.ndarray:
            out = np.zeros_like(xs)
            mask = xs > 0
            vals = xs[mask]
            out[mask] = vals * np.log(vals) / _lb
            return out

        g = GFunction(
            f"entropy_sum_base{base:g}",
            lambda x, _lb=log_base: 0.0 if x <= 0 else x * math.log(x) / _lb,
            stream_polylog=True, vec=vec)
        _ENTROPY_BASE[base] = g
        while len(_ENTROPY_BASE) > _ENTROPY_BASE_MAX:
            _ENTROPY_BASE.popitem(last=False)
    else:
        _ENTROPY_BASE.move_to_end(base)
    return g


def _entropy_g_and_log_m(base: float, m: float) -> Tuple[GFunction, float]:
    if base == 2.0:
        return ENTROPY_SUM, math.log2(m)
    log_m = math.log(m) / math.log(base)
    return (ENTROPY_NATS if base == math.e
            else _entropy_gfunction(base)), log_m


def entropy_from_snapshot(snapshot: QuerySnapshot,
                          base: float = 2.0) -> float:
    """``H = log m - S/m`` over an already-built snapshot (batch path)."""
    m = float(snapshot.total_weight)
    if m <= 0:
        return 0.0
    g, log_m = _entropy_g_and_log_m(base, m)
    _check(g)
    s = snapshot.gsum(g)
    h = log_m - s / m
    return min(max(h, 0.0), log_m)


def estimate_entropy(sketch, base: float = 2.0) -> float:
    """Shannon entropy ``H = log m - S/m`` with ``S = sum f log f`` (§3.4).

    The result is clamped to the feasible range ``[0, log m]`` (entropy
    is maximised by the uniform stream, whose ``m`` elements cannot
    spread over more than ``m`` distinct keys).
    """
    with _query_span("entropy"):
        return entropy_from_snapshot(snapshot_of(sketch), base=base)


def estimate_moment(sketch, p: float) -> float:
    """Frequency moment ``F_p = sum f_i**p`` for ``0 <= p <= 2``."""
    with _query_span("moment"):
        return max(0.0, estimate_gsum(sketch, make_moment(p)))


def heavy_changes(sketch_a, sketch_b, phi: float,
                  min_change: float = 1.0) -> Tuple[List[Tuple[int, float]], float]:
    """Change detection between two epochs (§3.4).

    Subtracts the epoch sketches (Count Sketch linearity), snapshots the
    difference sketch *once*, estimates the total change ``D`` with
    ``g(x)=|x|``, and returns the candidate keys whose estimated |delta|
    is at least ``phi * D``, plus D itself.

    Returns
    -------
    (changes, total_change):
        ``changes`` is a list of ``(key, signed_delta_estimate)`` sorted
        by magnitude; ``total_change`` is the estimated D.
    """
    with _query_span("heavy_changes"):
        diff = sketch_a.subtract(sketch_b)
        # One snapshot serves both the D estimate and the G-core listing.
        snapshot = snapshot_of(diff)
        _check(ABS)
        total = max(0.0, snapshot.gsum(ABS))
        if total <= 0:
            return [], 0.0
        threshold = max(phi * total, min_change)
        changes = snapshot.gcore(1.0, total=threshold)
        return changes, total


__all__ = [
    "estimate_gsum",
    "estimate_gsum_scalar",
    "snapshot_of",
    "g_core",
    "estimate_cardinality",
    "estimate_l1",
    "estimate_l2",
    "estimate_f2",
    "estimate_entropy",
    "entropy_from_snapshot",
    "estimate_moment",
    "heavy_changes",
    "IDENTITY",
]
