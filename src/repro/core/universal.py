"""The universal sketch — UnivMon's data plane (Algorithm 1 of the paper).

One :class:`UniversalSketch` maintains ``levels + 1`` Count Sketch
instances.  Level 0 sees the full stream; level ``j`` sees the substream
of keys whose first ``j`` sampling-hash bits are all 1, so each level
halves the expected number of distinct keys.  Every level also tracks the
top-k L2 heavy hitters of its substream (the ``Q_j`` sets).

From this single structure the control plane (``repro.core.gsum``)
estimates *any* Stream-PolyLog statistic: heavy hitters, distinct counts,
entropy, L1/L2 norms, heavy changes — the paper's "RISC" monitoring
primitive.

The sketch is linear: two instances built with the same ``seed`` and
geometry can be merged (multi-switch aggregation, §5 "Distributed
monitoring") or subtracted (change detection, §3.4).
"""

from __future__ import annotations

import math
import random
import threading
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.hashing.sampling import LevelSampler
from repro.obs.metrics import get_registry
from repro.core.level import SketchLevel
from repro.sketches.base import Sketch, UpdateCost
from repro.sketches.topk import TopK


class UniversalSketch(Sketch):
    """UnivMon's single generic data-plane primitive.

    Parameters
    ----------
    levels:
        Number of sampled substreams below the full stream (the paper's
        ``log n``); the sketch holds ``levels + 1`` Count Sketch
        instances.  Choose ``levels >= log2(expected distinct keys / k)``
        so the deepest substream fits in its heap.
    rows, width:
        Geometry of every per-level Count Sketch.
    heap_size:
        ``k`` of each per-level top-k heavy hitter set ``Q_j``.
    seed:
        Master seed; all hash functions derive from it deterministically,
        making equal-seed sketches mergeable/subtractable.
    """

    __slots__ = ("num_levels", "rows", "width", "heap_size", "seed",
                 "counter_bytes", "sampler", "levels", "packets",
                 "_version", "_snapshot", "_snapshot_lock")

    def __init__(self, levels: int = 16, rows: int = 5, width: int = 1024,
                 heap_size: int = 64, seed: Optional[int] = None,
                 counter_bytes: int = 4) -> None:
        if levels < 0:
            raise ConfigurationError(f"levels must be >= 0, got {levels}")
        self.num_levels = levels
        self.rows = rows
        self.width = width
        self.heap_size = heap_size
        self.seed = seed
        self.counter_bytes = counter_bytes
        master = random.Random(seed)
        self.sampler = LevelSampler(levels, seed=master.randrange(1 << 62))
        self.levels: List[SketchLevel] = [
            SketchLevel(rows=rows, width=width, heap_size=heap_size,
                        seed=master.randrange(1 << 62),
                        counter_bytes=counter_bytes)
            for _ in range(levels + 1)
        ]
        self.packets = 0
        self._version = 0     # bumped on every mutation
        self._snapshot = None  # cached QuerySnapshot for _version
        self._snapshot_lock = threading.Lock()  # one build per version

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def for_memory_budget(cls, total_bytes: int, levels: int = 16,
                          rows: int = 5, heap_size: int = 64,
                          seed: Optional[int] = None,
                          counter_bytes: int = 4) -> "UniversalSketch":
        """Size ``width`` so the whole sketch fits in ``total_bytes``.

        The budget covers all ``levels + 1`` Count Sketches
        (``counter_bytes`` per counter) and all heaps; this is the
        constructor the accuracy-vs-memory sweeps use.
        """
        heap_bytes = (levels + 1) * heap_size * 16
        counter_budget = total_bytes - heap_bytes
        width = counter_budget // ((levels + 1) * rows * counter_bytes)
        if width < 8:
            raise ConfigurationError(
                f"memory budget {total_bytes}B too small for {levels + 1} "
                f"levels x {rows} rows (needs >= "
                f"{heap_bytes + (levels + 1) * rows * counter_bytes * 8}B)")
        return cls(levels=levels, rows=rows, width=int(width),
                   heap_size=heap_size, seed=seed,
                   counter_bytes=counter_bytes)

    @staticmethod
    def levels_for(expected_distinct: int, heap_size: int = 64) -> int:
        """The ``log n`` rule: enough levels that the deepest substream's
        expected distinct count falls below the heap size.

        When every distinct key already fits in one heap, no sampled
        substream is needed at all: a single full-stream level (0 sampled
        levels) suffices."""
        if expected_distinct <= heap_size:
            return 0
        return max(1, math.ceil(math.log2(expected_distinct / heap_size)) + 1)

    # ------------------------------------------------------------------ #
    # data plane
    # ------------------------------------------------------------------ #

    def update(self, key: int, weight: int = 1) -> None:
        """Algorithm 1: add ``key`` to every substream it belongs to."""
        depth = self.sampler.deepest_level(key)
        levels = self.levels
        for j in range(depth + 1):
            levels[j].update(key, weight)
        self.packets += 1
        self._version += 1

    def update_array(self, keys: np.ndarray,
                     weights: Optional[np.ndarray] = None) -> None:
        """Vectorised bulk update over a ``uint64`` key array.

        Keys are sorted by sampling depth once, so level ``j`` receives
        the contiguous suffix of keys with ``depth >= j`` — one
        ``O(n log n)`` argsort replaces ``levels + 1`` full-array boolean
        scans (the depth distribution is geometric, so the deep scans of
        the old masking scheme touched mostly-empty masks).
        """
        keys = np.asarray(keys, dtype=np.uint64)
        n = len(keys)
        if n == 0:
            return
        # Chunk-granularity instrumentation: with the default no-op
        # registry these are a handful of no-op calls per *batch*, so
        # the hot path stays within noise of uninstrumented code (the
        # per-packet scalar path is deliberately left untouched).
        reg = get_registry()
        with reg.span("univmon_sketch_update_seconds",
                      help="bulk update latency per batch"):
            self._update_array(keys, weights, n)
        reg.counter("univmon_sketch_update_packets_total",
                    help="packets folded in through the bulk path").inc(n)

    def _update_array(self, keys: np.ndarray,
                      weights: Optional[np.ndarray], n: int) -> None:
        depths = self.sampler.deepest_level_array(keys)
        order = np.argsort(depths, kind="stable")
        keys = keys[order]
        if weights is not None:
            # Same int64 coercion as the per-sketch bulk paths: float (or
            # object) weight arrays truncate toward zero *per element*,
            # exactly like the scalar loop's int(w), instead of leaking
            # a float sum into the level weight accounting.
            weights = np.asarray(weights).astype(np.int64, copy=False)[order]
        depths = depths[order]
        # starts[j] = first index with depth >= j; level j consumes the
        # suffix keys[starts[j]:].
        starts = np.searchsorted(depths, np.arange(len(self.levels)),
                                 side="left")
        # Distinct keys once for the whole batch; a level's distinct set
        # is a mask slice (depth is a pure function of the key), which
        # preserves the sorted order np.unique produced.
        uniq = np.unique(keys)
        uniq_depths = self.sampler.deepest_level_array(uniq)
        for j, level in enumerate(self.levels):
            lo = int(starts[j])
            if lo >= n:
                break
            level.update_array(keys[lo:],
                               None if weights is None else weights[lo:],
                               distinct=uniq[uniq_depths >= j])
        self.packets += n
        self._version += 1

    @property
    def total_weight(self) -> int:
        """Total stream weight ``m`` (level 0 sees everything)."""
        return self.levels[0].weight

    # ------------------------------------------------------------------ #
    # query snapshot cache
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """Mutation counter: bumps on every update/bulk update, so query
        state caches can tell whether the sketch moved underneath them."""
        return self._version

    def invalidate_snapshot(self) -> None:
        """Drop the cached query snapshot (and bump the version).

        Mutations through the sketch API invalidate automatically; call
        this after mutating level internals directly (heap surgery,
        counter edits) so the next query rebuilds.
        """
        with self._snapshot_lock:
            self._version += 1
            self._snapshot = None

    def query_snapshot(self):
        """This sketch state's :class:`~repro.core.query.QuerySnapshot`.

        Built at most once per mutation version: all control-plane
        estimates between two mutations — no matter how many apps ask —
        share one materialisation of the heaps and sampling bits.
        Thread-safe: concurrent readers of a sealed sketch (the
        monitoring service's request handlers, metric scrapers) race to
        this cache, so check-and-build runs under a per-sketch lock —
        N concurrent first queries still cost exactly one build.
        Instrumented via ``univmon_query_snapshot_*`` (builds, cache
        hits, invalidations, build latency).
        """
        from repro.core.query import QuerySnapshot
        reg = get_registry()
        snapshot = self._snapshot
        if snapshot is not None and snapshot.version == self._version:
            # Lock-free hit: the cached reference is immutable and the
            # version check makes a stale read harmless (worst case we
            # fall through and revalidate under the lock).
            reg.counter("univmon_query_snapshot_cache_hits_total",
                        help="queries served from a cached snapshot").inc()
            return snapshot
        with self._snapshot_lock:
            snapshot = self._snapshot
            if snapshot is not None:
                if snapshot.version == self._version:
                    reg.counter("univmon_query_snapshot_cache_hits_total",
                                help="queries served from a cached "
                                     "snapshot").inc()
                    return snapshot
                reg.counter("univmon_query_snapshot_invalidations_total",
                            help="cached snapshots discarded because the "
                                 "sketch mutated").inc()
            with reg.span("univmon_query_snapshot_build_seconds",
                          help="snapshot materialisation latency"):
                snapshot = QuerySnapshot.build(self, version=self._version)
            self._snapshot = snapshot
            reg.counter("univmon_query_snapshot_builds_total",
                        help="query snapshots materialised").inc()
            return snapshot

    # ------------------------------------------------------------------ #
    # control-plane entry points (thin wrappers over repro.core.gsum)
    # ------------------------------------------------------------------ #

    # Query-latency spans (univmon_sketch_query_seconds{op=}) are
    # recorded inside repro.core.gsum's public estimators, so the apps
    # (which call those functions directly) and these wrappers land in
    # the same series exactly once.  estimate_gsum itself records
    # op="gsum" when it is the outermost estimate (nested calls from the
    # named wrappers are span-guarded).

    def heavy_hitters(self, fraction: float) -> List[Tuple[int, float]]:
        """G-core for g(x)=x: keys estimated above ``fraction`` of total."""
        from repro.core.gsum import g_core
        return g_core(self, fraction)

    def g_sum(self, g) -> float:
        """Estimate ``G-sum`` for any Stream-PolyLog g (Algorithm 2)."""
        from repro.core.gsum import estimate_gsum
        return estimate_gsum(self, g)

    def cardinality(self) -> float:
        from repro.core.gsum import estimate_cardinality
        return estimate_cardinality(self)

    def entropy(self, base: float = 2.0) -> float:
        from repro.core.gsum import estimate_entropy
        return estimate_entropy(self, base=base)

    # ------------------------------------------------------------------ #
    # linearity
    # ------------------------------------------------------------------ #

    def _check_compatible(self, other: "UniversalSketch") -> None:
        if not isinstance(other, UniversalSketch):
            raise IncompatibleSketchError(
                f"cannot combine UniversalSketch with {type(other).__name__}")
        same = (self.num_levels, self.rows, self.width, self.heap_size,
                self.seed) == (other.num_levels, other.rows, other.width,
                               other.heap_size, other.seed)
        if not same or self.seed is None:
            raise IncompatibleSketchError(
                "universal sketches must share geometry and an explicit "
                "seed to be combined")

    def _combine(self, other: "UniversalSketch", sign: int) -> "UniversalSketch":
        self._check_compatible(other)
        out = UniversalSketch(levels=self.num_levels, rows=self.rows,
                              width=self.width, heap_size=self.heap_size,
                              seed=self.seed, counter_bytes=self.counter_bytes)
        for j, (a, b) in enumerate(zip(self.levels, other.levels)):
            lvl = out.levels[j]
            if sign > 0:
                lvl.sketch = a.sketch.merge(b.sketch)
            else:
                lvl.sketch = a.sketch.subtract(b.sketch)
            lvl.packets = a.packets + b.packets
            lvl.weight = a.weight + sign * b.weight
            # Rebuild Q_j from the union of both heaps' keys, re-queried
            # against the combined counters.  One offer_many over the
            # sorted union keeps the rebuild O(capacity) in Python work
            # and deterministic; the churn counters are then overwritten
            # with the sum of both inputs' counters, so they keep meaning
            # "data-plane churn of the combined stream" rather than
            # accumulating this control-plane rebuild.
            union = set(a.topk.keys()) | set(b.topk.keys())
            heap = TopK(self.heap_size)
            if union:
                keys = np.fromiter(union, dtype=np.uint64, count=len(union))
                keys.sort()
                estimates = lvl.sketch.query_many(keys)
                heap.offer_many(keys, estimates, sorted_keys=True)
            heap.offers = a.topk.offers + b.topk.offers
            heap.evictions = a.topk.evictions + b.topk.evictions
            heap.rejections = a.topk.rejections + b.topk.rejections
            lvl.topk = heap
        out.packets = self.packets + other.packets
        return out

    def copy(self) -> "UniversalSketch":
        """An independent snapshot: counters and heaps are duplicated,
        hash machinery (immutable) is shared.  Mutating either sketch
        afterwards leaves the other untouched — this is what lets a
        merge fold start from a live per-switch sketch without aliasing
        data-plane state."""
        out = UniversalSketch.__new__(UniversalSketch)
        out.num_levels = self.num_levels
        out.rows = self.rows
        out.width = self.width
        out.heap_size = self.heap_size
        out.seed = self.seed
        out.counter_bytes = self.counter_bytes
        out.sampler = self.sampler
        out.levels = [level.copy() for level in self.levels]
        out.packets = self.packets
        out._version = 0
        out._snapshot = None
        out._snapshot_lock = threading.Lock()
        return out

    def merge(self, other: "UniversalSketch") -> "UniversalSketch":
        """Sketch of the concatenated streams (distributed aggregation)."""
        return self._combine(other, +1)

    def subtract(self, other: "UniversalSketch") -> "UniversalSketch":
        """Sketch of the difference stream — the change-detection primitive.

        Point queries on the result estimate per-key deltas, its G-core
        yields heavy-change keys, and ``g_sum(ABS)`` the total change D.
        """
        return self._combine(other, -1)

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        return sum(level.memory_bytes() for level in self.levels)

    def update_cost(self) -> UpdateCost:
        """Expected per-packet cost.

        Every packet pays all ``levels`` sampling bits (computed in one
        pass) and updates level ``j`` with probability ``2**-j``, so the
        expected number of Count Sketch updates is < 2 regardless of depth.
        """
        per_level = self.levels[0].update_cost()
        expected_levels = sum(2.0 ** -j for j in range(self.num_levels + 1))
        return UpdateCost(
            hashes=int(round(self.num_levels
                             + per_level.hashes * expected_levels)),
            counter_updates=int(round(
                per_level.counter_updates * expected_levels)),
            memory_words=int(round(
                per_level.memory_words * expected_levels)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"UniversalSketch(levels={self.num_levels}, rows={self.rows}, "
                f"width={self.width}, heap_size={self.heap_size}, "
                f"seed={self.seed})")
