"""The paper's primary contribution: the universal sketch.

- :class:`~repro.core.universal.UniversalSketch` — the data plane of
  Algorithm 1: ``levels + 1`` Count Sketch instances over recursively
  half-sampled substreams, each tracking its top-k L2 heavy hitters.
- :mod:`~repro.core.gsum` — the control plane of Algorithm 2: the
  Recursive Sum estimator turning per-level heavy hitter counters into an
  unbiased ``G-sum`` estimate, plus the task-specific wrappers
  (cardinality, entropy, moments) and ``G-core`` heavy hitter extraction.
- :mod:`~repro.core.gfunctions` — the g-function library and the
  Stream-PolyLog admissibility check.
- :class:`~repro.core.windowed.SlidingWindowUniversalSketch` — the §5
  "sliding windows" extension, built from mergeable epoch sketches.
"""

from repro.core.gfunctions import (
    ABS,
    CARDINALITY,
    ENTROPY_NATS,
    ENTROPY_SUM,
    IDENTITY,
    SQUARE,
    GFunction,
    is_stream_polylog,
)
from repro.core.gsum import (
    estimate_cardinality,
    estimate_entropy,
    estimate_gsum,
    estimate_gsum_scalar,
    estimate_l1,
    estimate_moment,
    g_core,
)
from repro.core.level import SketchLevel
from repro.core.query import QueryEngine, QueryMemo, QuerySnapshot, Statistic
from repro.core.universal import UniversalSketch
from repro.core.windowed import SlidingWindowUniversalSketch

__all__ = [
    "UniversalSketch",
    "SketchLevel",
    "SlidingWindowUniversalSketch",
    "GFunction",
    "IDENTITY",
    "SQUARE",
    "ABS",
    "CARDINALITY",
    "ENTROPY_SUM",
    "ENTROPY_NATS",
    "is_stream_polylog",
    "estimate_gsum",
    "estimate_gsum_scalar",
    "estimate_cardinality",
    "estimate_entropy",
    "estimate_l1",
    "estimate_moment",
    "g_core",
    "QueryEngine",
    "QueryMemo",
    "QuerySnapshot",
    "Statistic",
]
