"""Terminal line charts for sweep results — no plotting dependency.

The figures of the paper are error-vs-memory curves; this renders the
same series as a fixed-grid ASCII chart so ``univmon experiment --plot``
and the bench result files can show the *shape*, not just rows.

Rendering model: a ``height x width`` character grid, one mark per
series per column (series are sampled/interpolated onto the x grid),
y-axis labels on the left, a legend underneath.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

_MARKS = "ox+*#@%&"


def render_chart(series: Dict[str, Sequence[Tuple[float, float]]],
                 width: int = 60, height: int = 16,
                 x_label: str = "", y_label: str = "",
                 log_x: bool = False,
                 title: str = "") -> str:
    """Render named ``(x, y)`` series as an ASCII chart.

    Parameters
    ----------
    series:
        ``name -> [(x, y), ...]``; up to 8 series (one mark each).
    log_x:
        Place x positions on a log scale (memory sweeps are geometric).
    """
    if not series:
        raise ConfigurationError("no series to render")
    if len(series) > len(_MARKS):
        raise ConfigurationError(
            f"at most {len(_MARKS)} series supported, got {len(series)}")
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ConfigurationError("series contain no points")

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5
    if x_lo == x_hi:
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    if log_x and x_lo <= 0:
        raise ConfigurationError("log_x needs positive x values")

    def x_pos(x: float) -> int:
        if log_x:
            frac = (math.log(x) - math.log(x_lo)) \
                / (math.log(x_hi) - math.log(x_lo))
        else:
            frac = (x - x_lo) / (x_hi - x_lo)
        return min(width - 1, max(0, int(round(frac * (width - 1)))))

    def y_pos(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, max(0, int(round(frac * (height - 1)))))

    grid = [[" "] * width for _ in range(height)]
    for mark, (name, pts) in zip(_MARKS, series.items()):
        for x, y in pts:
            row = height - 1 - y_pos(y)
            col = x_pos(x)
            grid[row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_hi:.3g}"), len(f"{y_lo:.3g}"))
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:.3g}".rjust(label_width)
        elif i == height - 1:
            label = f"{y_lo:.3g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = (f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}".rjust(8))
    lines.append(" " * label_width + "  " + x_axis)
    if x_label or y_label:
        lines.append(" " * label_width + f"  x: {x_label}   y: {y_label}")
    legend = "   ".join(f"{mark}={name}" for mark, name
                        in zip(_MARKS, series))
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def chart_sweep(points, metrics: Sequence[str],
                x_label: str = "memory_kb",
                title: str = "", log_x: bool = True) -> str:
    """Chart selected metrics of a ``run_sweep`` result (medians)."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for metric in metrics:
        pts = [(p.x, p.metrics[metric].median) for p in points
               if metric in p.metrics]
        if pts:
            series[metric] = pts
    return render_chart(series, x_label=x_label, y_label="median",
                        log_x=log_x, title=title)
