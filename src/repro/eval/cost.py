"""The Intel-PCM substitute: a deterministic op-cost model.

The paper measures total CPU cycles with Intel PCM on its testbed
(UnivMon 1.407e9 vs OpenSketch-suite 2.941e9 over the trace).  Hardware
counters are unavailable here, so the harness counts the operations the
data plane performs — hash evaluations, counter read-modify-writes, and
memory words touched (tracked per sketch in
:class:`~repro.sketches.base.UpdateCost`) — and converts them to
"cycles" with per-op weights.

The weights are order-of-magnitude figures for a modern x86 core (a
short hash like tabulation ≈ 15-25 cycles; an L1/L2-resident
read-modify-write ≈ 4; a likely-L2/L3 memory touch ≈ 10).  The paper's
claim is *relative* ("UnivMon's suite cost is ~0.5x OpenSketch's; worst
case 10-15% more expensive per task"), and relative op counts are
preserved under any positive choice of weights of the right magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sketches.base import UpdateCost


@dataclass(frozen=True)
class CostModel:
    """Per-operation cycle weights."""

    cycles_per_hash: float = 20.0
    cycles_per_counter_update: float = 4.0
    cycles_per_memory_word: float = 10.0

    def cycles(self, cost: UpdateCost) -> float:
        """Total modelled cycles for an accumulated op count."""
        return (cost.hashes * self.cycles_per_hash
                + cost.counter_updates * self.cycles_per_counter_update
                + cost.memory_words * self.cycles_per_memory_word)

    def cycles_per_packet(self, cost: UpdateCost, packets: int) -> float:
        if packets <= 0:
            return 0.0
        return self.cycles(cost) / packets


#: The weights every benchmark uses unless overridden.
DEFAULT_COST_MODEL = CostModel()
