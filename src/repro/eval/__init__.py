"""Evaluation harness: metrics, ground truth, the PCM-substitute cost
model, and the 20-run median/std sweep runner the figures are built from.
"""

from repro.eval.cost import CostModel, DEFAULT_COST_MODEL
from repro.eval.groundtruth import GroundTruth
from repro.eval.metrics import (
    detection_rates,
    f1_score,
    precision_recall,
    relative_error,
)
from repro.eval.runner import TrialStats, SweepPoint, aggregate, format_table, run_sweep

__all__ = [
    "detection_rates",
    "precision_recall",
    "f1_score",
    "relative_error",
    "GroundTruth",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "TrialStats",
    "SweepPoint",
    "aggregate",
    "run_sweep",
    "format_table",
]
