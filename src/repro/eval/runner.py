"""The sweep runner: "we run the experiment 20 times and report the
median and standard deviation over these 20 independent runs."

A *trial function* maps ``(x, seed) -> {metric_name: value}``; the runner
evaluates it over a sweep of x values (memory budgets, in every figure)
with ``runs`` independent seeds each, aggregates per metric, and formats
the figure's rows as an aligned text table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.obs.metrics import get_registry


@dataclass(frozen=True)
class TrialStats:
    """Median and standard deviation over independent runs."""

    median: float
    std: float
    runs: int

    def __str__(self) -> str:
        return f"{self.median:.4f} ± {self.std:.4f}"


def aggregate(values: Sequence[float]) -> TrialStats:
    arr = np.asarray(list(values), dtype=np.float64)
    return TrialStats(median=float(np.median(arr)), std=float(arr.std()),
                      runs=len(arr))


@dataclass
class SweepPoint:
    """All metric aggregates at one sweep position (one figure x-value)."""

    x: float
    metrics: Dict[str, TrialStats] = field(default_factory=dict)


def run_sweep(xs: Sequence[float],
              trial: Callable[[float, int], Dict[str, float]],
              runs: int = 20,
              base_seed: int = 1000) -> List[SweepPoint]:
    """Evaluate ``trial`` at every x with ``runs`` independent seeds.

    Seeds are ``base_seed + run`` so UnivMon and baseline trials at the
    same (x, run) share a trace when the trial function derives its trace
    from the seed — paired comparison, lower variance.
    """
    reg = get_registry()
    points = []
    for x in xs:
        samples: Dict[str, List[float]] = {}
        for run in range(runs):
            with reg.span("univmon_eval_trial_seconds",
                          help="wall time of one sweep trial"):
                result = trial(x, base_seed + run)
            reg.counter("univmon_eval_trials_total",
                        help="sweep trials executed").inc()
            for name, value in result.items():
                samples.setdefault(name, []).append(float(value))
        points.append(SweepPoint(
            x=float(x),
            metrics={name: aggregate(vals) for name, vals in samples.items()},
        ))
    return points


def format_table(points: Sequence[SweepPoint],
                 metrics: Sequence[str],
                 x_label: str = "memory_kb",
                 title: str = "") -> str:
    """Render sweep results as the aligned rows a figure would plot."""
    header = [x_label] + [f"{m} (median±std)" for m in metrics]
    rows = [header]
    for point in points:
        row = [f"{point.x:g}"]
        for m in metrics:
            stats = point.metrics.get(m)
            row.append(str(stats) if stats else "-")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[j])
                               for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
