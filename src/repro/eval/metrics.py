"""Error metrics used across the figures.

The paper reports *false positive rate* and *false negative rate*
separately for the detection tasks (HH, DDoS, Change) and *relative
error* for the scalar estimates (distinct counts, entropy).
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple


def _as_sets(truth: Iterable, reported: Iterable) -> Tuple[Set, Set]:
    return set(truth), set(reported)


def detection_rates(truth: Iterable, reported: Iterable) -> Tuple[float, float]:
    """``(false_positive_rate, false_negative_rate)`` of a detection task.

    - FP rate: fraction of *reported* items that are not true positives —
      ``|reported \\ truth| / |reported|`` (0 when nothing is reported).
    - FN rate: fraction of *true* items that were missed —
      ``|truth \\ reported| / |truth|`` (0 when there are no positives).
    """
    t, r = _as_sets(truth, reported)
    fp = len(r - t) / len(r) if r else 0.0
    fn = len(t - r) / len(t) if t else 0.0
    return fp, fn


def precision_recall(truth: Iterable, reported: Iterable) -> Tuple[float, float]:
    """``(precision, recall)`` — the complements of the rates above."""
    fp, fn = detection_rates(truth, reported)
    return 1.0 - fp, 1.0 - fn


def f1_score(truth: Iterable, reported: Iterable) -> float:
    """Harmonic mean of precision and recall (1.0 when both sets empty)."""
    t, r = _as_sets(truth, reported)
    if not t and not r:
        return 1.0
    precision, recall = precision_recall(truth, reported)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / truth`` (absolute error when truth == 0)."""
    if truth == 0:
        return abs(estimate)
    return abs(estimate - truth) / abs(truth)


def wmrd(estimate, truth) -> float:
    """Weighted Mean Relative Difference between two histograms.

    The standard flow-size-distribution error metric (Kumar et al.):

        WMRD = sum_i |n_i - n'_i|  /  sum_i (n_i + n'_i) / 2

    Inputs are aligned sequences (index = flow size); 0 when identical,
    approaching 2 when disjoint.
    """
    num = 0.0
    den = 0.0
    for a, b in zip(estimate, truth):
        num += abs(a - b)
        den += (a + b) / 2.0
    if den == 0:
        return 0.0
    return num / den
