"""The paper's experiments, one function per figure/table.

Every function here regenerates one artifact of Section 4 (see
DESIGN.md's per-experiment index): it builds the workload, runs UnivMon
and the OpenSketch-style baseline at each memory budget over ``runs``
independent seeds, and returns the figure's data points
(:class:`~repro.eval.runner.SweepPoint` lists) ready for
:func:`~repro.eval.runner.format_table`.

Shared conventions, following Section 4's setup:

- metrics are computed over the **source IP** feature;
- epochs are **5 seconds**; memory numbers are per 5-second epoch;
- each point is the **median ± std over 20 runs** (``runs`` configurable);
- UnivMon and the baseline see the *same* trace at the same (memory, run)
  position (paired seeds), and both are sized to the same memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataplane.keys import src_ip_key
from repro.dataplane.switch import MonitoredSwitch
from repro.dataplane.trace import (
    DDoSEvent,
    SyntheticTraceConfig,
    generate_epoch_pair,
    generate_trace,
)
from repro.eval.cost import DEFAULT_COST_MODEL, CostModel
from repro.eval.groundtruth import GroundTruth
from repro.eval.metrics import detection_rates, relative_error
from repro.eval.runner import SweepPoint, run_sweep
from repro.core.gsum import (
    estimate_cardinality,
    estimate_entropy,
    g_core,
    heavy_changes,
)
from repro.core.universal import UniversalSketch
from repro.opensketch.tasks import (
    ChangeDetectionTask,
    DDoSDetectionTask,
    HeavyHitterTask,
    HierarchicalHeavyHitterTask,
)
from repro.sketches.entropy_sampling import SampledEntropyEstimator

#: Default memory sweep (KB), spanning the paper's ~0.1-2 MB x-axis
#: (with two sub-0.1 MB points to expose the error knee).
DEFAULT_MEMORY_KB: Tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048)


@dataclass(frozen=True)
class WorkloadSpec:
    """The per-epoch workload every figure shares (5-second epoch)."""

    packets: int = 30_000
    flows: int = 5_000
    zipf_skew: float = 1.1

    def epoch_config(self, seed: int, **overrides) -> SyntheticTraceConfig:
        params = dict(packets=self.packets, flows=self.flows,
                      zipf_skew=self.zipf_skew, duration=5.0, seed=seed)
        params.update(overrides)
        return SyntheticTraceConfig(**params)


DEFAULT_WORKLOAD = WorkloadSpec()


def _univmon_for(budget_bytes: int, flows: int, seed: int,
                 heap_size: Optional[int] = None,
                 rows: int = 5) -> UniversalSketch:
    """Size a universal sketch for a memory budget.

    The heap size scales with the budget (1/4096th of it, clamped to
    [32, 512]) because for "flat" statistics like F0 the ``Q_j``
    truncation — not the Count Sketch width — is the binding error term;
    fixed heaps would make the error curve insensitive to memory.
    """
    if heap_size is None:
        heap_size = max(32, min(512, budget_bytes // 4096))
    levels = UniversalSketch.levels_for(flows, heap_size=heap_size)
    return UniversalSketch.for_memory_budget(
        budget_bytes, levels=levels, rows=rows, heap_size=heap_size,
        seed=seed)


# --------------------------------------------------------------------- #
# FIG4 — Heavy hitters: FP/FN rate vs memory, UnivMon vs OpenSketch
# --------------------------------------------------------------------- #

def fig4_heavy_hitters(memory_kb: Sequence[float] = DEFAULT_MEMORY_KB,
                       runs: int = 20,
                       workload: WorkloadSpec = DEFAULT_WORKLOAD,
                       alpha: float = 0.005) -> List[SweepPoint]:
    """Figure 4: heavy hitter detection error vs memory.

    UnivMon's G-core (g(x)=x) vs OpenSketch's hierarchical count-min
    task, at alpha = 0.5% of link traffic.
    """

    def trial(kb: float, seed: int) -> Dict[str, float]:
        trace = generate_trace(workload.epoch_config(seed))
        keys = trace.key_array(src_ip_key)
        truth = GroundTruth(trace, src_ip_key)
        true_hh = truth.heavy_hitter_keys(alpha)
        budget = int(kb * 1024)

        univmon = _univmon_for(budget, workload.flows, seed=seed)
        univmon.update_array(keys)
        um_keys = {k for k, _ in g_core(univmon, alpha)}
        um_fp, um_fn = detection_rates(true_hh, um_keys)

        hier_levels = 8
        os_width = max(16, budget // (hier_levels * 3 * 4))
        osk = HierarchicalHeavyHitterTask(rows=3, width=os_width,
                                          key_bits=32, step=4, seed=seed)
        osk.update_array(keys)
        os_keys = {k for k, _ in osk.heavy_hitters(alpha)}
        os_fp, os_fn = detection_rates(true_hh, os_keys)

        return {
            "univmon_fp": um_fp, "univmon_fn": um_fn,
            "opensketch_fp": os_fp, "opensketch_fn": os_fn,
        }

    return run_sweep(memory_kb, trial, runs=runs)


# --------------------------------------------------------------------- #
# FIG5 — DDoS: distinct-source error and detection vs memory
# --------------------------------------------------------------------- #

def fig5_ddos(memory_kb: Sequence[float] = DEFAULT_MEMORY_KB,
              runs: int = 20,
              workload: WorkloadSpec = DEFAULT_WORKLOAD,
              attack_sources: int = 4000) -> List[SweepPoint]:
    """Figure 5: DDoS detection (g(x)=x**0, i.e. F0) vs memory.

    A 10-second trace whose second 5-second epoch contains a DDoS burst
    (``attack_sources`` fresh sources).  Both systems estimate the
    distinct source count per epoch and flag epochs above k (set halfway
    between the normal and attacked loads).  Reported per memory point:
    F0 relative error and detection error rate for UnivMon and the
    OpenSketch bitmap baseline.
    """

    def trial(kb: float, seed: int) -> Dict[str, float]:
        config = SyntheticTraceConfig(
            packets=workload.packets * 2, flows=workload.flows,
            zipf_skew=workload.zipf_skew, duration=10.0, seed=seed,
            ddos_events=(DDoSEvent(start=5.0, end=10.0,
                                   num_sources=attack_sources,
                                   packets_per_source=2),))
        trace = generate_trace(config)
        epochs = [trace.slice_time(0.0, 5.0), trace.slice_time(5.0, 10.0)]
        labels = [False, True]
        budget = int(kb * 1024)

        normal_distinct = epochs[0].distinct(src_ip_key)
        attack_distinct = epochs[1].distinct(src_ip_key)
        k = (normal_distinct + attack_distinct) / 2.0

        um_errors, bm_errors = [], []
        um_wrong = bm_wrong = 0
        for epoch, is_attack in zip(epochs, labels):
            keys = epoch.key_array(src_ip_key)
            true_distinct = epoch.distinct(src_ip_key)

            univmon = _univmon_for(budget, workload.flows, seed=seed)
            univmon.update_array(keys)
            um_est = estimate_cardinality(univmon)
            um_errors.append(relative_error(um_est, true_distinct))
            if (um_est > k) != is_attack:
                um_wrong += 1

            bitmap = DDoSDetectionTask(method="bitmap", memory_bytes=budget,
                                       seed=seed)
            bitmap.update_array(keys)
            bm_est = bitmap.distinct_estimate()
            bm_errors.append(relative_error(bm_est, true_distinct))
            if (bm_est > k) != is_attack:
                bm_wrong += 1

        return {
            "univmon_err": float(np.mean(um_errors)),
            "opensketch_err": float(np.mean(bm_errors)),
            "univmon_detect_err": um_wrong / 2.0,
            "opensketch_detect_err": bm_wrong / 2.0,
        }

    return run_sweep(memory_kb, trial, runs=runs)


# --------------------------------------------------------------------- #
# FIG6 — Change detection: FP/FN vs memory (UnivMon wins here)
# --------------------------------------------------------------------- #

def fig6_change_detection(memory_kb: Sequence[float] = DEFAULT_MEMORY_KB,
                          runs: int = 20,
                          workload: WorkloadSpec = DEFAULT_WORKLOAD,
                          phi: float = 0.03,
                          num_changes: int = 20,
                          change_factor: float = 10.0) -> List[SweepPoint]:
    """Figure 6: heavy-change detection error vs memory.

    UnivMon subtracts adjacent-epoch universal sketches and thresholds
    the difference's G-core at ``phi`` of the estimated total change; the
    baseline is the k-ary sketch of Krishnamurthy et al. (which even gets
    the exact union of epoch keys as candidates — the advantage UnivMon
    does not need).
    """

    def trial(kb: float, seed: int) -> Dict[str, float]:
        epoch_a, epoch_b = generate_epoch_pair(
            packets=workload.packets, flows=workload.flows,
            zipf_skew=workload.zipf_skew, num_changes=num_changes,
            change_factor=change_factor, seed=seed,
            rank_lo=10, rank_hi=max(100, num_changes * 3))
        keys_a = epoch_a.key_array(src_ip_key)
        keys_b = epoch_b.key_array(src_ip_key)
        truth_a = GroundTruth(epoch_a, src_ip_key)
        truth_b = GroundTruth(epoch_b, src_ip_key)
        true_changes = truth_b.heavy_change_keys(truth_a, phi)
        budget = int(kb * 1024)

        sketch_seed = seed + 17
        um_a = _univmon_for(budget // 2, workload.flows, seed=sketch_seed)
        um_b = _univmon_for(budget // 2, workload.flows, seed=sketch_seed)
        um_a.update_array(keys_a)
        um_b.update_array(keys_b)
        changes, _total = heavy_changes(um_b, um_a, phi)
        um_keys = {k for k, _ in changes}
        um_fp, um_fn = detection_rates(true_changes, um_keys)

        kary_width = max(16, (budget // 2) // (5 * 4))
        task = ChangeDetectionTask(rows=5, width=kary_width,
                                   seed=sketch_seed)
        task.update_array(keys_a)
        task.advance_epoch()
        task.update_array(keys_b)
        candidates = truth_b.union_keys(truth_a)
        os_changes, _ = task.heavy_changes(phi, candidates)
        os_keys = {k for k, _ in os_changes}
        os_fp, os_fn = detection_rates(true_changes, os_keys)

        return {
            "univmon_fp": um_fp, "univmon_fn": um_fn,
            "opensketch_fp": os_fp, "opensketch_fn": os_fn,
        }

    return run_sweep(memory_kb, trial, runs=runs)


# --------------------------------------------------------------------- #
# FIG7 — Entropy estimation error vs memory
# --------------------------------------------------------------------- #

def fig7_entropy(memory_kb: Sequence[float] = DEFAULT_MEMORY_KB,
                 runs: int = 20,
                 workload: WorkloadSpec = DEFAULT_WORKLOAD) -> List[SweepPoint]:
    """Figure 7: entropy estimation relative error vs memory.

    OpenSketch has no entropy task (the paper reports UnivMon alone); the
    canonical streaming competitor — the Lall et al. sampled estimator,
    given the same memory in sample trackers — is reported alongside.
    """

    def trial(kb: float, seed: int) -> Dict[str, float]:
        trace = generate_trace(workload.epoch_config(seed))
        keys = trace.key_array(src_ip_key)
        truth = GroundTruth(trace, src_ip_key)
        true_h = truth.entropy(base=2.0)
        budget = int(kb * 1024)

        univmon = _univmon_for(budget, workload.flows, seed=seed)
        univmon.update_array(keys)
        um_h = estimate_entropy(univmon, base=2.0)

        # One 16-byte tracker per sample; more samples than packets buys
        # nothing (each position is then just drawn repeatedly), so cap.
        samples = max(8, min(budget // 16, len(keys)))
        lall = SampledEntropyEstimator(stream_length=len(keys),
                                       num_samples=samples, base=2.0,
                                       seed=seed)
        for key in keys.tolist():
            lall.update(int(key))
        lall_h = lall.entropy_estimate()

        return {
            "univmon_err": relative_error(um_h, true_h),
            "sampling_err": relative_error(lall_h, true_h),
        }

    return run_sweep(memory_kb, trial, runs=runs)


# --------------------------------------------------------------------- #
# TAB-CPU — total modelled cycles: UnivMon vs the OpenSketch suite
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class OverheadResult:
    """Modelled cycles for the whole trace (the Intel-PCM substitute)."""

    packets: int
    univmon_cycles: float
    opensketch_suite_cycles: float
    opensketch_per_task_cycles: Dict[str, float]

    @property
    def ratio(self) -> float:
        """UnivMon cycles / OpenSketch-suite cycles (paper: ~0.48)."""
        return self.univmon_cycles / self.opensketch_suite_cycles


def overhead_cycles(workload: WorkloadSpec = DEFAULT_WORKLOAD,
                    epochs: int = 12, seed: int = 42,
                    memory_kb: int = 1024,
                    cost_model: CostModel = DEFAULT_COST_MODEL) -> OverheadResult:
    """§4 "Overhead": total cycles to support the task suite.

    One UnivMon instance supports HH + DDoS + Change + Entropy; the
    OpenSketch suite needs three separate custom tasks (it cannot do
    entropy at all).  The paper's PCM numbers — UnivMon 1.407e9 vs
    OpenSketch 2.941e9 — are testbed cycle counts; the comparable claim
    here is the *ratio* under the op-cost model.
    """
    budget = memory_kb * 1024
    config = workload.epoch_config(seed, duration=5.0 * epochs,
                                   packets=workload.packets * epochs)
    trace = generate_trace(config)

    um_switch = MonitoredSwitch("univmon")
    um_switch.attach(
        "univmon",
        lambda: _univmon_for(budget, workload.flows, seed=seed),
        src_ip_key)
    for epoch in trace.epochs(5.0):
        um_switch.process_trace(epoch)
        um_switch.poll("univmon")
    univmon_cycles = cost_model.cycles(um_switch.total_cost())

    os_switch = MonitoredSwitch("opensketch")
    hier_width = max(16, budget // (8 * 3 * 4))
    os_switch.attach(
        "hh", lambda: HierarchicalHeavyHitterTask(
            rows=3, width=hier_width, key_bits=32, step=4, seed=seed),
        src_ip_key)
    os_switch.attach(
        "change", lambda: ChangeDetectionTask(
            rows=5, width=max(16, budget // (5 * 4)), seed=seed),
        src_ip_key)
    os_switch.attach(
        "ddos", lambda: DDoSDetectionTask(
            method="bitmap", memory_bytes=budget, seed=seed),
        src_ip_key)
    for epoch in trace.epochs(5.0):
        os_switch.process_trace(epoch)
        os_switch.poll_all()
    per_task = {
        name: cost_model.cycles(os_switch.program(name).total_cost)
        for name in ("hh", "change", "ddos")
    }
    suite_cycles = sum(per_task.values())

    return OverheadResult(
        packets=len(trace),
        univmon_cycles=univmon_cycles,
        opensketch_suite_cycles=suite_cycles,
        opensketch_per_task_cycles=per_task,
    )


# --------------------------------------------------------------------- #
# Ablations (design choices called out in DESIGN.md)
# --------------------------------------------------------------------- #

def ablation_levels(level_counts: Sequence[int] = (2, 4, 6, 8, 10, 12, 14),
                    runs: int = 10,
                    workload: WorkloadSpec = DEFAULT_WORKLOAD,
                    width: int = 2048) -> List[SweepPoint]:
    """G-sum accuracy vs the number of sampling levels.

    Too few levels leave the deepest substream with more distinct keys
    than its heap can hold, biasing Algorithm 2 for "flat" statistics
    like F0; beyond ~log2(n/k) levels, extra levels only cost memory.
    """

    def trial(levels: float, seed: int) -> Dict[str, float]:
        trace = generate_trace(workload.epoch_config(seed))
        keys = trace.key_array(src_ip_key)
        truth = GroundTruth(trace, src_ip_key)
        sketch = UniversalSketch(levels=int(levels), rows=5, width=width,
                                 heap_size=64, seed=seed)
        sketch.update_array(keys)
        return {
            "f0_err": relative_error(estimate_cardinality(sketch),
                                     truth.distinct),
            "entropy_err": relative_error(estimate_entropy(sketch),
                                          truth.entropy()),
            "memory_kb": sketch.memory_bytes() / 1024.0,
        }

    return run_sweep(level_counts, trial, runs=runs)


def ablation_heap_size(heap_sizes: Sequence[int] = (8, 16, 32, 64, 128, 256),
                       runs: int = 10,
                       workload: WorkloadSpec = DEFAULT_WORKLOAD,
                       width: int = 2048) -> List[SweepPoint]:
    """G-sum accuracy vs per-level top-k size (the ``Q_j`` truncation)."""

    def trial(k: float, seed: int) -> Dict[str, float]:
        trace = generate_trace(workload.epoch_config(seed))
        keys = trace.key_array(src_ip_key)
        truth = GroundTruth(trace, src_ip_key)
        levels = UniversalSketch.levels_for(workload.flows,
                                            heap_size=int(k))
        sketch = UniversalSketch(levels=levels, rows=5, width=width,
                                 heap_size=int(k), seed=seed)
        sketch.update_array(keys)
        return {
            "f0_err": relative_error(estimate_cardinality(sketch),
                                     truth.distinct),
            "entropy_err": relative_error(estimate_entropy(sketch),
                                          truth.entropy()),
            "memory_kb": sketch.memory_bytes() / 1024.0,
        }

    return run_sweep(heap_sizes, trial, runs=runs)
