"""Exact per-task answers computed from a trace — what every figure's
error is measured against."""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.dataplane.keys import KeyFunction
from repro.dataplane.trace import Trace
from repro.sketches.exact import ExactCounter


class GroundTruth:
    """Exact statistics of one epoch (trace slice) over one key function."""

    def __init__(self, trace: Trace, key_function: KeyFunction) -> None:
        self.key_function = key_function
        keys = trace.key_array(key_function)
        self.counter = ExactCounter()
        self.counter.update_array(keys)

    @property
    def total(self) -> int:
        return self.counter.total()

    @property
    def distinct(self) -> int:
        return self.counter.cardinality()

    def heavy_hitter_keys(self, alpha: float) -> Set[int]:
        """Keys above an ``alpha`` fraction of the total traffic."""
        return {k for k, _ in self.counter.heavy_hitters(alpha)}

    def entropy(self, base: float = 2.0) -> float:
        return self.counter.entropy(base=base)

    def moment(self, p: float) -> float:
        return self.counter.moment(p)

    def frequency(self, key: int) -> int:
        return self.counter.frequency(key)

    def g_sum(self, g) -> float:
        return self.counter.g_sum(g)

    def flow_size_distribution(self, max_size: int) -> np.ndarray:
        """``phi[s]`` = number of flows with exactly ``s`` packets, for
        ``s`` in [0, max_size]; flows above ``max_size`` are clamped into
        the last bucket (mirroring the MRAC estimator's convention)."""
        phi = np.zeros(max_size + 1, dtype=np.float64)
        for count in self.counter.counts.values():
            phi[min(count, max_size)] += 1
        return phi

    # ------------------------------------------------------------------ #
    # two-epoch (change detection) ground truth
    # ------------------------------------------------------------------ #

    def heavy_change_keys(self, other: "GroundTruth", phi: float) -> Set[int]:
        """Keys whose |delta| between the two epochs is >= phi * D."""
        return {k for k, _ in self.counter.heavy_changes(other.counter, phi)}

    def total_change(self, other: "GroundTruth") -> int:
        return self.counter.total_change(other.counter)

    def union_keys(self, other: "GroundTruth") -> np.ndarray:
        """All keys present in either epoch (candidate set for baselines
        that cannot enumerate keys themselves)."""
        keys = set(self.counter.counts) | set(other.counter.counts)
        return np.fromiter(keys, dtype=np.uint64, count=len(keys))
