"""OpenSketch superspreader detection task.

A *superspreader* is a source contacting more than ``k`` distinct
destinations (scanners, worms) — one of OpenSketch's flagship library
tasks, built from exactly its primitives: a bloom filter deduplicates
(src, dst) pairs, and a count-min sketch counts *first-contact* events
per source, so its per-source estimate approximates the distinct
destination count.

This task is baseline-only in this repository: the universal sketch's
G-sums are statistics of one frequency vector, while superspreaders need
a per-key distinct count (a vector of F0s) — precisely the
"multidimensional" frontier §5 leaves open.  Having the custom task here
makes that boundary concrete and testable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.sketches.base import Sketch, UpdateCost
from repro.sketches.bloom import BloomFilter
from repro.sketches.countmin import CountMinSketch
from repro.sketches.topk import TopK


class SuperSpreaderTask(Sketch):
    """Detect sources contacting more than ``k`` distinct destinations.

    ``update`` takes the packed (src, dst) pair key produced by
    :data:`repro.dataplane.keys.src_dst_key`; the source is the key's
    high 32 bits.

    Parameters
    ----------
    rows, width:
        Geometry of the per-source first-contact counter (count-min).
    bloom_bits:
        Bloom filter size for (src, dst) deduplication; undersizing it
        makes the filter saturate and *undercount* (false positives in
        the filter suppress first-contact events).
    heap_size:
        Candidate sources tracked for reporting.
    """

    def __init__(self, rows: int = 3, width: int = 4096,
                 bloom_bits: int = 1 << 18, heap_size: int = 128,
                 seed: Optional[int] = None) -> None:
        if seed is None:
            raise ConfigurationError(
                "SuperSpreaderTask needs an explicit seed")
        self._bloom = BloomFilter(bits=bloom_bits, num_hashes=4, seed=seed)
        self._counts = CountMinSketch(rows=rows, width=width,
                                      seed=seed + 1)
        self._heap = TopK(heap_size)

    @staticmethod
    def source_of(pair_key: int) -> int:
        return (pair_key >> 32) & 0xFFFFFFFF

    def update(self, key: int, weight: int = 1) -> None:
        """Fold one (src, dst) pair key in (weight is ignored: contact
        uniqueness, not volume, is what counts)."""
        if self._bloom.add_if_new(key):
            src = self.source_of(key)
            self._counts.update(src, 1)
            self._heap.offer(src, float(self._counts.query(src)))

    def update_array(self, keys: np.ndarray,
                     weights: Optional[np.ndarray] = None) -> None:
        for key in np.asarray(keys, dtype=np.uint64).tolist():
            self.update(int(key))

    def distinct_destinations(self, src: int) -> float:
        """Estimated distinct destinations contacted by ``src``."""
        return float(self._counts.query(src))

    def superspreaders(self, k: int) -> List[Tuple[int, float]]:
        """Tracked sources whose estimate exceeds ``k``, largest first."""
        return [(src, est) for src, est in self._heap.items() if est > k]

    def memory_bytes(self) -> int:
        return (self._bloom.memory_bytes() + self._counts.memory_bytes()
                + self._heap.memory_bytes())

    def update_cost(self) -> UpdateCost:
        bloom = self._bloom.update_cost()
        # The count-min + heap path only runs on first contacts; charge
        # the expected amortised cost assuming mostly-repeat traffic.
        return UpdateCost(hashes=bloom.hashes + 1,
                          counter_updates=bloom.counter_updates + 1,
                          memory_words=bloom.memory_words + 2)
