"""An OpenSketch-style programmable measurement substrate (Yu et al.,
NSDI 2013) — the system the paper benchmarks UnivMon against.

OpenSketch structures the data plane as a three-stage pipeline —
*hashing* (pick packet fields), *classification* (filter by wildcard
rules), *counting* (update simple counter structures) — and ships a task
library built from those primitives.  This package reimplements both: the
pipeline in :mod:`~repro.opensketch.primitives` and the per-task custom
sketches in :mod:`~repro.opensketch.tasks` (heavy hitters, change
detection, DDoS victim detection), each a task-specific composition in
contrast to UnivMon's single generic primitive.
"""

from repro.opensketch.primitives import (
    ClassificationStage,
    CountingStage,
    HashingStage,
    MeasurementPipeline,
)
from repro.opensketch.superspreader import SuperSpreaderTask
from repro.opensketch.tasks import (
    ChangeDetectionTask,
    DDoSDetectionTask,
    HeavyHitterTask,
    HierarchicalHeavyHitterTask,
)

__all__ = [
    "HashingStage",
    "ClassificationStage",
    "CountingStage",
    "MeasurementPipeline",
    "HeavyHitterTask",
    "HierarchicalHeavyHitterTask",
    "ChangeDetectionTask",
    "DDoSDetectionTask",
    "SuperSpreaderTask",
]
