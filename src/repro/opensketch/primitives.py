"""OpenSketch's three-stage measurement pipeline.

A pipeline is ``hashing -> classification -> counting``:

1. :class:`HashingStage` projects each packet to the key field(s) the
   task measures (a :class:`~repro.dataplane.keys.KeyFunction`).
2. :class:`ClassificationStage` keeps only packets matching prefix rules
   (e.g. "dst in 10.1.0.0/16"), letting one physical pipeline serve a
   scoped task.
3. :class:`CountingStage` feeds surviving keys to a counter structure
   (count-min, bitmap, bloom filter, ...).

Tasks in :mod:`repro.opensketch.tasks` are pre-wired pipelines; the
classes here are also usable directly for custom compositions, which is
OpenSketch's programming model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.dataplane.keys import KeyFunction
from repro.dataplane.trace import Trace
from repro.sketches.base import Sketch, UpdateCost


class HashingStage:
    """Stage 1: select the key field(s) to measure over."""

    def __init__(self, key_function: KeyFunction) -> None:
        self.key_function = key_function

    def keys(self, trace: Trace) -> np.ndarray:
        return trace.key_array(self.key_function)


@dataclass(frozen=True)
class PrefixRule:
    """Match a 32-bit field against ``value/prefix_len`` (CIDR-style)."""

    field: str          # "src" or "dst"
    value: int
    prefix_len: int

    def __post_init__(self) -> None:
        if self.field not in ("src", "dst"):
            raise ConfigurationError(
                f"rule field must be 'src' or 'dst', got {self.field!r}")
        if not 0 <= self.prefix_len <= 32:
            raise ConfigurationError(
                f"prefix_len must be in [0, 32], got {self.prefix_len}")

    def mask(self) -> int:
        if self.prefix_len == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.prefix_len)) & 0xFFFFFFFF

    def matches_array(self, trace: Trace) -> np.ndarray:
        column = trace.src if self.field == "src" else trace.dst
        mask = np.uint32(self.mask())
        return (column & mask) == np.uint32(self.value & self.mask())


class ClassificationStage:
    """Stage 2: keep packets matching *any* of the rules (OR semantics).

    An empty rule list matches everything (the common whole-link case).
    """

    def __init__(self, rules: Sequence[PrefixRule] = ()) -> None:
        self.rules = list(rules)

    def select(self, trace: Trace) -> np.ndarray:
        """Boolean mask over the trace's packets."""
        if not self.rules:
            return np.ones(len(trace), dtype=bool)
        mask = np.zeros(len(trace), dtype=bool)
        for rule in self.rules:
            mask |= rule.matches_array(trace)
        return mask


class CountingStage:
    """Stage 3: the counter structure updates."""

    def __init__(self, sketch: Sketch) -> None:
        self.sketch = sketch

    def consume(self, keys: np.ndarray) -> None:
        if hasattr(self.sketch, "update_array"):
            self.sketch.update_array(keys)
        else:
            for key in keys.tolist():
                self.sketch.update(int(key))


class MeasurementPipeline:
    """A composed hashing/classification/counting pipeline."""

    def __init__(self, hashing: HashingStage,
                 counting: CountingStage,
                 classification: Optional[ClassificationStage] = None) -> None:
        self.hashing = hashing
        self.classification = classification or ClassificationStage()
        self.counting = counting
        self.packets_processed = 0
        self.packets_matched = 0

    def process_trace(self, trace: Trace) -> None:
        mask = self.classification.select(trace)
        keys = self.hashing.keys(trace)[mask]
        self.counting.consume(keys)
        self.packets_processed += len(trace)
        self.packets_matched += int(mask.sum())

    def process_key(self, key: int) -> None:
        """Per-packet path for pre-classified keys."""
        self.counting.sketch.update(key)
        self.packets_processed += 1
        self.packets_matched += 1

    def memory_bytes(self) -> int:
        return self.counting.sketch.memory_bytes()

    def update_cost(self) -> UpdateCost:
        return self.counting.sketch.update_cost()
