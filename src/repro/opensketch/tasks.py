"""The OpenSketch task library: one custom sketch composition per task.

These are the specialised baselines Figures 4-6 compare UnivMon against.
Each task implements the :class:`~repro.sketches.base.Sketch` interface so
it can be attached to a :class:`~repro.dataplane.switch.MonitoredSwitch`
exactly like a universal sketch, plus its task-specific query method.

- :class:`HeavyHitterTask` — count-min (conservative update) + top-k heap
  (the idealised variant with a software candidate heap).
- :class:`HierarchicalHeavyHitterTask` — OpenSketch's deployable variant:
  one count-min per prefix granularity, heavy keys *enumerated* by
  descending the prefix tree (count-min alone cannot list keys, so the
  hardware library pays for a hierarchy — this is what makes the custom
  suite's total op cost exceed UnivMon's in the overhead comparison).
- :class:`ChangeDetectionTask` — a k-ary sketch per epoch; heavy changes
  from the counter-wise difference (Krishnamurthy et al.).
- :class:`DDoSDetectionTask` — distinct-source counting via bitmap
  (linear counting), HyperLogLog, or bloom-filter + counter.

Entropy has *no* OpenSketch task — the paper notes "OpenSketch does not
yet support Entropy"; the streaming baseline used in the Figure 7 bench is
:class:`~repro.sketches.entropy_sampling.SampledEntropyEstimator`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.sketches.base import Sketch, UpdateCost
from repro.sketches.bitmap import LinearCounter
from repro.sketches.bloom import BloomFilter
from repro.sketches.countmin import CountMinSketch
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.kary import KArySketch, total_change
from repro.sketches.topk import TopK


class HeavyHitterTask(Sketch):
    """OpenSketch heavy hitters: count-min + heap.

    Parameters
    ----------
    rows, width:
        Count-min geometry.
    heap_size:
        Candidate heavy hitters tracked.
    conservative:
        Use conservative update (OpenSketch's refinement); reduces
        overestimation at one extra read per counter.
    """

    def __init__(self, rows: int = 3, width: int = 2048,
                 heap_size: int = 128, seed: Optional[int] = None,
                 conservative: bool = True) -> None:
        self.cm = CountMinSketch(rows=rows, width=width, seed=seed,
                                 conservative=conservative)
        self.heap = TopK(heap_size)
        self.total = 0

    def update(self, key: int, weight: int = 1) -> None:
        self.cm.update(key, weight)
        self.total += weight
        self.heap.offer(key, float(self.cm.query(key)))

    def update_array(self, keys: np.ndarray,
                     weights: Optional[np.ndarray] = None) -> None:
        """Bulk path: vectorised counters, heap refreshed post-batch."""
        self.cm.update_array(keys, weights)
        if weights is None:
            self.total += len(keys)
        else:
            self.total += int(np.sum(weights))
        uniq = np.unique(keys)
        estimates = self.cm.query_many(uniq)
        order = np.argsort(estimates)
        for i in order:
            self.heap.offer(int(uniq[i]), float(estimates[i]))

    def heavy_hitters(self, fraction: float) -> List[Tuple[int, float]]:
        """Keys whose estimate is >= ``fraction`` of total traffic."""
        threshold = fraction * self.total
        return [(k, est) for k, est in self.heap.items() if est >= threshold]

    def memory_bytes(self) -> int:
        return self.cm.memory_bytes() + self.heap.memory_bytes()

    def update_cost(self) -> UpdateCost:
        base = self.cm.update_cost()
        # Point query for heap maintenance re-reads the rows.
        return UpdateCost(hashes=base.hashes,
                          counter_updates=base.counter_updates,
                          memory_words=base.memory_words + self.cm.rows + 1)


class ChangeDetectionTask(Sketch):
    """OpenSketch-style change detection with per-epoch k-ary sketches.

    ``update`` feeds the current epoch; :meth:`advance_epoch` seals it.
    :meth:`heavy_changes` diffs the current epoch against a *reference*
    and returns keys whose estimated |delta| exceeds ``phi`` times the
    total change.  The k-ary sketch is irreversible, so candidate keys
    must be supplied by the caller (OpenSketch pairs it with a key
    table; the benches pass the keys seen in either epoch) — this is the
    structural disadvantage versus UnivMon that Figure 6 surfaces.

    The reference follows Krishnamurthy et al.'s forecast models:

    - ``forecast_alpha=None`` (default): the previous epoch itself (the
      "basic" model, and what the Figure 6 bench uses for parity with
      UnivMon's epoch-pair subtraction);
    - ``forecast_alpha=a`` in (0, 1]: an EWMA forecast maintained
      counter-wise, ``F_t = a * S_{t-1} + (1-a) * F_{t-1}`` — linearity
      of the k-ary table is what makes forecasting sketches legal.
    """

    def __init__(self, rows: int = 5, width: int = 2048,
                 seed: Optional[int] = None,
                 forecast_alpha: Optional[float] = None) -> None:
        if seed is None:
            raise ConfigurationError(
                "ChangeDetectionTask needs an explicit seed (its epoch "
                "sketches must be subtractable)")
        if forecast_alpha is not None and not 0.0 < forecast_alpha <= 1.0:
            raise ConfigurationError(
                f"forecast_alpha must be in (0, 1], got {forecast_alpha}")
        self._make = lambda: KArySketch(rows=rows, width=width, seed=seed)
        self.forecast_alpha = forecast_alpha
        self.current = self._make()
        self.previous: Optional[KArySketch] = None
        self._forecast: Optional[np.ndarray] = None  # float EWMA table
        self.epochs_sealed = 0

    def update(self, key: int, weight: int = 1) -> None:
        self.current.update(key, weight)

    def update_array(self, keys: np.ndarray,
                     weights: Optional[np.ndarray] = None) -> None:
        self.current.update_array(keys, weights)

    def advance_epoch(self) -> None:
        sealed = self.current
        if self.forecast_alpha is not None:
            table = sealed.table.astype(np.float64)
            if self._forecast is None:
                self._forecast = table
            else:
                a = self.forecast_alpha
                self._forecast = a * table + (1 - a) * self._forecast
        self.previous = sealed
        self.current = self._make()
        self.epochs_sealed += 1

    def _reference(self) -> Optional[KArySketch]:
        """The sketch the current epoch is compared against."""
        if self.previous is None:
            return None
        if self.forecast_alpha is None or self._forecast is None:
            return self.previous
        reference = self._make()
        reference.table = np.rint(self._forecast).astype(np.int64)
        return reference

    def heavy_changes(self, phi: float,
                      candidates: np.ndarray) -> Tuple[List[Tuple[int, float]], float]:
        """(heavy-change keys with signed deltas, estimated total change)."""
        reference = self._reference()
        if reference is None:
            return [], 0.0
        diff = self.current.subtract(reference)
        total = total_change(diff)
        if total <= 0:
            return [], 0.0
        estimates = diff.query_many(np.asarray(candidates, dtype=np.uint64))
        threshold = phi * total
        out = [(int(k), float(d))
               for k, d in zip(candidates, estimates)
               if abs(d) >= threshold]
        out.sort(key=lambda kv: -abs(kv[1]))
        return out, total

    def memory_bytes(self) -> int:
        # Two epochs resident (current + previous), as deployed.
        factor = 2 if self.previous is not None else 1
        return self.current.memory_bytes() * factor

    def update_cost(self) -> UpdateCost:
        return self.current.update_cost()


class DDoSDetectionTask(Sketch):
    """OpenSketch DDoS victim test: count distinct sources, compare to k.

    Three interchangeable counting methods, all OpenSketch primitives:

    - ``"bitmap"`` — linear-counting bitmap (default; cheapest),
    - ``"hll"`` — HyperLogLog (constant relative error),
    - ``"bloom"`` — bloom filter + exact counter of first-seen keys.
    """

    def __init__(self, method: str = "bitmap", memory_bytes: int = 4096,
                 seed: Optional[int] = None) -> None:
        if method not in ("bitmap", "hll", "bloom"):
            raise ConfigurationError(
                f"method must be bitmap|hll|bloom, got {method!r}")
        self.method = method
        if method == "bitmap":
            self._counter = LinearCounter(bits=max(64, memory_bytes * 8),
                                          seed=seed)
        elif method == "hll":
            precision = max(4, min(18, (memory_bytes).bit_length() - 1))
            self._counter = HyperLogLog(precision=precision, seed=seed)
        else:
            self._bloom = BloomFilter(bits=max(64, memory_bytes * 8),
                                      num_hashes=4, seed=seed)
            self._new_keys = 0

    def update(self, key: int, weight: int = 1) -> None:
        if self.method == "bloom":
            if self._bloom.add_if_new(key):
                self._new_keys += 1
        else:
            self._counter.update(key)

    def update_array(self, keys: np.ndarray,
                     weights: Optional[np.ndarray] = None) -> None:
        if self.method == "bloom":
            for key in keys.tolist():
                self.update(int(key))
        else:
            self._counter.update_array(keys)

    def distinct_estimate(self) -> float:
        """Estimated number of distinct keys (sources) observed."""
        if self.method == "bloom":
            return float(self._new_keys)
        return self._counter.cardinality()

    def is_victim(self, k: int) -> bool:
        """The paper's DDoS test: more than ``k`` distinct sources?"""
        return self.distinct_estimate() > k

    def memory_bytes(self) -> int:
        if self.method == "bloom":
            return self._bloom.memory_bytes() + 8
        return self._counter.memory_bytes()

    def update_cost(self) -> UpdateCost:
        if self.method == "bloom":
            return self._bloom.update_cost()
        return self._counter.update_cost()


class HierarchicalHeavyHitterTask(Sketch):
    """OpenSketch heavy hitters via a prefix hierarchy of count-min sketches.

    A count-min sketch cannot enumerate its heavy keys, so OpenSketch's
    heavy-hitter task maintains one sketch per prefix granularity
    (here every ``step`` bits of a ``key_bits``-bit key) and reconstructs
    the heavy keys top-down: a child prefix is only queried when its
    parent was heavy, which bounds the query work while keeping the data
    plane key-oblivious.

    The price is ``key_bits / step`` count-min updates per packet; the
    memory budget is split evenly across the hierarchy levels.
    """

    def __init__(self, rows: int = 3, width: int = 1024,
                 key_bits: int = 32, step: int = 4,
                 seed: Optional[int] = None,
                 conservative: bool = False) -> None:
        if key_bits % step != 0:
            raise ConfigurationError(
                f"step {step} must divide key_bits {key_bits}")
        self.key_bits = key_bits
        self.step = step
        self.num_levels = key_bits // step
        rng_seed = seed
        self.levels = []
        for i in range(self.num_levels):
            level_seed = None if rng_seed is None else rng_seed + 1000 * i
            self.levels.append(CountMinSketch(
                rows=rows, width=width, seed=level_seed,
                conservative=conservative))
        self.total = 0

    def _prefix(self, key: int, level: int) -> int:
        """Key truncated to the first ``(level+1)*step`` bits."""
        shift = self.key_bits - (level + 1) * self.step
        return key >> shift

    def update(self, key: int, weight: int = 1) -> None:
        for level, cm in enumerate(self.levels):
            cm.update(self._prefix(key, level), weight)
        self.total += weight

    def update_array(self, keys: np.ndarray,
                     weights: Optional[np.ndarray] = None) -> None:
        keys = np.asarray(keys, dtype=np.uint64)
        for level, cm in enumerate(self.levels):
            shift = np.uint64(self.key_bits - (level + 1) * self.step)
            cm.update_array(keys >> shift, weights)
        if weights is None:
            self.total += len(keys)
        else:
            self.total += int(np.sum(weights))

    def heavy_hitters(self, fraction: float) -> List[Tuple[int, float]]:
        """Enumerate keys above ``fraction`` of total by tree descent."""
        # A threshold below 1 packet would make every prefix "heavy" and
        # the descent exponential; one packet is the physical floor.
        threshold = max(fraction * self.total, 1.0)
        candidates = [0]  # prefixes heavy at the previous level
        for level, cm in enumerate(self.levels):
            fanout = 1 << self.step
            next_candidates = []
            for parent in candidates:
                base = parent << self.step
                for child in range(fanout):
                    prefix = base | child
                    if cm.query(prefix) >= threshold:
                        next_candidates.append(prefix)
            candidates = next_candidates
            if not candidates:
                return []
        return [(prefix, float(self.levels[-1].query(prefix)))
                for prefix in candidates]

    def memory_bytes(self) -> int:
        return sum(cm.memory_bytes() for cm in self.levels)

    def update_cost(self) -> UpdateCost:
        per = self.levels[0].update_cost()
        return per.scaled(self.num_levels)
