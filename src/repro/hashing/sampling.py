"""UnivMon level sampling (the ``h_1 .. h_L : [n] -> {0,1}`` stack).

Algorithm 1 of the paper keeps ``log n`` substreams: a key belongs to
substream ``D_j`` iff ``h_1(key) = ... = h_j(key) = 1`` for ``j`` independent
pairwise hash bits.  Every key is therefore in ``D_0`` (the full stream), and
membership is *prefix-closed*: if a key is in ``D_j`` it is in all shallower
substreams too.  The deepest substream a key belongs to is fully described by
one number — the index of the first hash that outputs 0.

:class:`LevelSampler` exposes exactly that number, so the data plane does a
single O(levels) pass per packet instead of the naive O(levels**2).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.tabulation import (
    TabulationHash,
    gather_packed,
    pack_tabulation_fields,
    tabulation_family,
)


class LevelSampler:
    """The sampling-hash stack shared by a universal sketch's levels.

    Parameters
    ----------
    levels:
        Number of sampled substreams *below* the full stream; the sketch
        has ``levels + 1`` Count Sketch instances (level 0 = full stream).
    seed:
        Seeds the underlying hash functions.  Two samplers with the same
        seed and level count are identical, which is the precondition for
        merging or differencing universal sketches.
    """

    __slots__ = ("levels", "_hashes", "seed", "_parity")

    def __init__(self, levels: int, seed: Optional[int] = None) -> None:
        if levels < 0:
            raise ConfigurationError(f"levels must be >= 0, got {levels}")
        self.levels = levels
        self.seed = seed
        # One independent hash per level; bit j of a key is hash_j's parity.
        self._hashes: List[TabulationHash] = \
            list(tabulation_family(seed, levels))
        self._parity = None

    def bit(self, level: int, key: int) -> int:
        """The value of ``h_level(key)`` in {0, 1} (level is 1-based)."""
        if not 1 <= level <= self.levels:
            raise ConfigurationError(
                f"level must be in [1, {self.levels}], got {level}")
        return self._hashes[level - 1](key) & 1

    def _packed_parity(self):
        """The fused parity table, or ``False`` when it cannot be packed
        (more than 63 levels).  Built lazily and cached."""
        if self._parity is None:
            if self.levels <= 63:
                self._parity = pack_tabulation_fields(
                    self._hashes, lambda t: t & np.uint64(1), 1)
            else:
                self._parity = False
        return self._parity

    def bit_array(self, level: int, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`bit`: ``h_level`` over a ``uint64`` key array.

        Fast path reuses the packed-tabulation parity table built for
        :meth:`deepest_level_array` — one XOR-gather yields every level's
        parity bit at once, and bit ``level - 1`` of the gathered word is
        selected.  The control plane uses this to precompute, per
        snapshot, the sampling bits Algorithm 2's Recursive Sum consumes,
        instead of re-hashing one key at a time per estimate.
        """
        if not 1 <= level <= self.levels:
            raise ConfigurationError(
                f"level must be in [1, {self.levels}], got {level}")
        words = self.parity_words(keys)
        if words is not None:
            return ((words >> np.int64(level - 1)) & np.int64(1)) \
                .astype(np.int64)
        return (self._hashes[level - 1].hash_array(
            np.asarray(keys, dtype=np.uint64))
            & np.uint64(1)).astype(np.int64)

    def parity_words(self, keys: np.ndarray) -> Optional[np.ndarray]:
        """All levels' sampling bits for ``keys`` in one XOR-gather.

        Bit ``j - 1`` of the returned ``int64`` word is ``h_j(key) & 1``.
        The query snapshot concatenates every level's heavy-hitter keys
        and calls this once, amortising the gather's fixed cost across
        the whole cascade.  ``None`` when the parity table cannot be
        packed (more than 63 levels) — callers fall back to per-level
        hashing.
        """
        packed = self._packed_parity()
        if packed is False:
            return None
        return gather_packed(packed, np.asarray(keys, dtype=np.uint64))

    def deepest_level(self, key: int) -> int:
        """Deepest substream index ``j`` such that key is in ``D_j``.

        Returns a value in ``[0, levels]``: 0 means only the full stream,
        ``levels`` means the key survives every sampling hash.
        """
        depth = 0
        for h in self._hashes:
            if h(key) & 1:
                depth += 1
            else:
                break
        return depth

    def deepest_level_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`deepest_level` for a ``uint64`` key array.

        Fast path: every level's parity bit is packed at bit ``j`` of one
        fused tabulation table (:func:`pack_tabulation_fields` with a
        1-bit field per level), so a single XOR-gather yields, per key,
        the word whose bit ``j`` is ``h_{j+1}(key) & 1``.  The depth is
        the run of trailing ones of that word — the position of the
        lowest zero bit, found with ``(x & -x)`` on the complement.
        Falls back to per-level hashing when ``levels > 63``.
        """
        n = len(keys)
        if self.levels == 0:
            return np.zeros(n, dtype=np.int64)
        packed = self._packed_parity()
        if packed is not False:
            bits = gather_packed(packed, keys)
            mask = np.int64((1 << self.levels) - 1)
            inv = ~bits & mask          # zero bits of the parity word
            low = inv & -inv            # lowest zero bit (0 if none)
            depth = np.bitwise_count((low - np.int64(1)) & mask)
            return np.where(inv == 0, np.int64(self.levels),
                            depth).astype(np.int64)
        bits = np.empty((self.levels, n), dtype=bool)
        for j, h in enumerate(self._hashes):
            bits[j] = (h.hash_array(keys) & np.uint64(1)).astype(bool)
        # Depth = index of first False row, or `levels` if all True.
        all_true = bits.all(axis=0)
        first_zero = np.argmin(bits, axis=0)  # 0 if bits[0] False, etc.
        depth = np.where(all_true, self.levels, first_zero)
        return depth.astype(np.int64)

    def compatible_with(self, other: "LevelSampler") -> bool:
        """True when both samplers hash identically (same seed geometry)."""
        return (self.levels == other.levels and self.seed == other.seed
                and self.seed is not None)
