"""Simple tabulation hashing (Zobrist / Patrascu-Thorup).

The 64-bit key is split into 8 bytes; each byte indexes its own table of 256
random 64-bit words, and the results are XORed.  Simple tabulation is
3-wise independent (strictly more than the pairwise independence the
sketches require) and in practice behaves like a fully random function for
the workloads here (Patrascu & Thorup, "The Power of Simple Tabulation
Hashing").

It is the fast path for per-packet scalar hashing: eight table lookups and
XORs beat modular polynomial evaluation by a wide margin in CPython, and
the batched :meth:`TabulationHash.hash_array` variant is pure numpy fancy
indexing, which is what makes trace-scale benchmarks tractable.

Multi-row bulk ingest goes further.  Because tabulation hashing is a XOR
of byte-table entries, any function of the hash that commutes with XOR
(bit masks, bit selects, shifts) can be *precomputed into the tables*;
and several rows' fields can be packed into disjoint bit ranges of one
64-bit word, since XOR never carries between fields.  A sketch with
``rows`` hash functions then evaluates every row's bucket (and sign bit)
with a single set of eight gathers from one fused ``(8, 256)`` table —
see :func:`pack_tabulation_fields` / :func:`gather_packed` and their use
in ``repro.sketches.countsketch``.
"""

from __future__ import annotations

import random
import sys
from typing import Callable, Optional, Sequence

import numpy as np

_MASK64 = (1 << 64) - 1

_LITTLE_ENDIAN = sys.byteorder == "little"


def byte_view(xs: np.ndarray) -> np.ndarray:
    """The 8 bytes of each ``uint64`` key as an ``(n, 8)`` view.

    Column ``i`` holds bits ``[8i, 8i+8)`` of the key (the same byte
    order the scalar path uses), with no arithmetic: on little-endian
    hosts this is a zero-copy reinterpret of the key buffer, on
    big-endian a reversed view of it.  ``np.take`` accepts the strided
    uint8 columns directly, which skips the shift/mask/astype cascade
    per byte and is a large share of the bulk-path win.
    """
    xs = np.ascontiguousarray(xs, dtype=np.uint64)
    view = xs.view(np.uint8).reshape(len(xs), 8)
    return view if _LITTLE_ENDIAN else view[:, ::-1]


def pack_tabulation_fields(hashes: Sequence["TabulationHash"],
                           field_of: Callable[[np.ndarray], np.ndarray],
                           field_bits: int) -> np.ndarray:
    """Fuse several tabulation hashes into one ``(8, 256)`` ``int64`` table.

    ``field_of`` maps a hash's raw ``(8, 256)`` uint64 tables to the
    per-entry field value (``< 2**field_bits``) and must commute with
    XOR — compositions of bit masks, selects and shifts do.  Row ``r``'s
    field lands at bit offset ``r * field_bits``; XOR-gathering the
    result (:func:`gather_packed`) therefore evaluates *every* row's
    field in one pass.  Requires ``len(hashes) * field_bits <= 63``.
    """
    if len(hashes) * field_bits > 63:
        raise ValueError(
            f"cannot pack {len(hashes)} fields of {field_bits} bits "
            f"into one 64-bit word")
    packed = np.zeros((8, 256), dtype=np.int64)
    for r, h in enumerate(hashes):
        packed |= field_of(h._np_tables).astype(np.int64) << (r * field_bits)
    return packed


def gather_packed(packed: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """XOR-gather a fused table over a key array (``int64`` output)."""
    view = byte_view(xs)
    out = np.take(packed[0], view[:, 0])
    scratch = np.empty(len(out), dtype=np.int64)
    for i in range(1, 8):
        np.take(packed[i], view[:, i], out=scratch)
        np.bitwise_xor(out, scratch, out=out)
    return out


#: Memoized seed-derived hash families (see :func:`tabulation_family`).
#: Bounded: a pathological sweep over thousands of distinct seeds clears
#: the cache rather than growing it without limit.
_FAMILY_CACHE: dict = {}
_FAMILY_CACHE_MAX = 512


def tabulation_family(seed: Optional[int],
                      count: int) -> "tuple[TabulationHash, ...]":
    """The first ``count`` hashes of ``random.Random(seed)``'s
    deterministic tabulation stream.

    Hash construction is the dominant cost of building a sketch (2048
    ``getrandbits`` calls per function), and a fleet of equal-seed
    sketches — every frame decode, every merge fold, every simulated
    switch — rebuilds the *same* functions.  Since
    :class:`TabulationHash` is immutable after construction (sketch
    copies already share hash machinery on that basis), equal-seed
    families can be shared globally.  ``seed=None`` means "fresh
    randomness" and is never cached.
    """
    if seed is None:
        rng = random.Random(None)
        return tuple(TabulationHash(rng=rng) for _ in range(count))
    key = (int(seed), count)
    family = _FAMILY_CACHE.get(key)
    if family is None:
        if len(_FAMILY_CACHE) >= _FAMILY_CACHE_MAX:
            _FAMILY_CACHE.clear()
        rng = random.Random(seed)
        family = tuple(TabulationHash(rng=rng) for _ in range(count))
        _FAMILY_CACHE[key] = family
    return family


class TabulationHash:
    """A single tabulation hash function ``h : [2**64) -> [2**64)``."""

    __slots__ = ("_tables", "_np_tables")

    def __init__(self, seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        if rng is None:
            rng = random.Random(seed)
        self._tables = [
            [rng.getrandbits(64) for _ in range(256)] for _ in range(8)
        ]
        self._np_tables = np.array(self._tables, dtype=np.uint64)

    def __call__(self, x: int) -> int:
        x &= _MASK64
        t = self._tables
        return (
            t[0][x & 0xFF]
            ^ t[1][(x >> 8) & 0xFF]
            ^ t[2][(x >> 16) & 0xFF]
            ^ t[3][(x >> 24) & 0xFF]
            ^ t[4][(x >> 32) & 0xFF]
            ^ t[5][(x >> 40) & 0xFF]
            ^ t[6][(x >> 48) & 0xFF]
            ^ t[7][(x >> 56) & 0xFF]
        )

    def hash_array(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised evaluation over a ``uint64`` numpy array."""
        xs = xs.astype(np.uint64, copy=False)
        out = self._np_tables[0][(xs & np.uint64(0xFF)).astype(np.intp)]
        for i in range(1, 8):
            byte = ((xs >> np.uint64(8 * i)) & np.uint64(0xFF)).astype(np.intp)
            out ^= self._np_tables[i][byte]
        return out

    @staticmethod
    def hash_matrix(hashes: Sequence["TabulationHash"],
                    xs: np.ndarray) -> np.ndarray:
        """Evaluate several hash functions over one key array at once.

        Returns a ``(len(hashes), len(xs))`` ``uint64`` array whose row
        ``r`` equals ``hashes[r].hash_array(xs)``.  The byte extraction
        (:func:`byte_view`) is shared across all rows — one pass over the
        8 key bytes instead of one per row — and the gathers write into
        the output rows directly, so no per-row temporaries are built.
        """
        view = byte_view(xs)
        n = view.shape[0]
        out = np.empty((len(hashes), n), dtype=np.uint64)
        scratch = np.empty(n, dtype=np.uint64)
        for r, h in enumerate(hashes):
            tables = h._np_tables
            np.take(tables[0], view[:, 0], out=out[r])
            for i in range(1, 8):
                np.take(tables[i], view[:, i], out=scratch)
                np.bitwise_xor(out[r], scratch, out=out[r])
        return out

    def bucket(self, x: int, width: int) -> int:
        """Hash ``x`` onto ``[0, width)``."""
        return self(x) % width

    def sign(self, x: int) -> int:
        """Hash ``x`` onto ``{-1, +1}`` using the top bit."""
        return 1 if (self(x) >> 63) else -1
