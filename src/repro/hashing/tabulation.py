"""Simple tabulation hashing (Zobrist / Patrascu-Thorup).

The 64-bit key is split into 8 bytes; each byte indexes its own table of 256
random 64-bit words, and the results are XORed.  Simple tabulation is
3-wise independent (strictly more than the pairwise independence the
sketches require) and in practice behaves like a fully random function for
the workloads here (Patrascu & Thorup, "The Power of Simple Tabulation
Hashing").

It is the fast path for per-packet scalar hashing: eight table lookups and
XORs beat modular polynomial evaluation by a wide margin in CPython, and
the batched :meth:`TabulationHash.hash_array` variant is pure numpy fancy
indexing, which is what makes trace-scale benchmarks tractable.
"""

from __future__ import annotations

import random
from typing import Optional

import numpy as np

_MASK64 = (1 << 64) - 1


class TabulationHash:
    """A single tabulation hash function ``h : [2**64) -> [2**64)``."""

    __slots__ = ("_tables", "_np_tables")

    def __init__(self, seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        if rng is None:
            rng = random.Random(seed)
        self._tables = [
            [rng.getrandbits(64) for _ in range(256)] for _ in range(8)
        ]
        self._np_tables = np.array(self._tables, dtype=np.uint64)

    def __call__(self, x: int) -> int:
        x &= _MASK64
        t = self._tables
        return (
            t[0][x & 0xFF]
            ^ t[1][(x >> 8) & 0xFF]
            ^ t[2][(x >> 16) & 0xFF]
            ^ t[3][(x >> 24) & 0xFF]
            ^ t[4][(x >> 32) & 0xFF]
            ^ t[5][(x >> 40) & 0xFF]
            ^ t[6][(x >> 48) & 0xFF]
            ^ t[7][(x >> 56) & 0xFF]
        )

    def hash_array(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised evaluation over a ``uint64`` numpy array."""
        xs = xs.astype(np.uint64, copy=False)
        out = self._np_tables[0][(xs & np.uint64(0xFF)).astype(np.intp)]
        for i in range(1, 8):
            byte = ((xs >> np.uint64(8 * i)) & np.uint64(0xFF)).astype(np.intp)
            out ^= self._np_tables[i][byte]
        return out

    def bucket(self, x: int, width: int) -> int:
        """Hash ``x`` onto ``[0, width)``."""
        return self(x) % width

    def sign(self, x: int) -> int:
        """Hash ``x`` onto ``{-1, +1}`` using the top bit."""
        return 1 if (self(x) >> 63) else -1
