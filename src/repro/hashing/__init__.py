"""Seedable hash families used throughout the sketches.

Everything in this package is deterministic given a seed, which is what makes
sketch *linearity* usable: two sketches built with the same seed share hash
functions and can therefore be added or subtracted counter-by-counter.

Public surface:

- :class:`~repro.hashing.families.PolynomialHash` — k-wise independent
  polynomial hashing over the Mersenne prime ``2**61 - 1``.
- :class:`~repro.hashing.families.PairwiseHash` — the ``k=2`` special case.
- :class:`~repro.hashing.families.SignHash` — pairwise-independent ±1 hash
  (the Count Sketch "s" function).
- :class:`~repro.hashing.families.BucketHash` — hash onto ``[0, width)``.
- :class:`~repro.hashing.tabulation.TabulationHash` — 3-wise independent
  tabulation hashing, the fastest family here for scalar lookups.
- :class:`~repro.hashing.sampling.LevelSampler` — UnivMon's Algorithm 1
  level-sampling hash stack (``h_1 .. h_L : [n] -> {0,1}``).
"""

from repro.hashing.families import (
    MERSENNE_PRIME_61,
    BucketHash,
    PairwiseHash,
    PolynomialHash,
    SignHash,
)
from repro.hashing.sampling import LevelSampler
from repro.hashing.tabulation import TabulationHash

__all__ = [
    "MERSENNE_PRIME_61",
    "PolynomialHash",
    "PairwiseHash",
    "SignHash",
    "BucketHash",
    "TabulationHash",
    "LevelSampler",
]
