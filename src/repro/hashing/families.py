"""k-wise independent hash families over the Mersenne prime ``2**61 - 1``.

The classic construction: pick ``k`` random coefficients ``a_0 .. a_{k-1}``
(with ``a_{k-1} != 0``) and evaluate the degree-``k-1`` polynomial

    h(x) = (a_{k-1} x^{k-1} + ... + a_1 x + a_0) mod p

over the field GF(p).  Any such family is exactly k-wise independent, which
is the independence level every analysis in the paper relies on (Count
Sketch needs pairwise rows and pairwise signs; the level samplers of
Algorithm 1 need pairwise bits).

Python integers are arbitrary precision, so the modular arithmetic here is
exact.  Batched (numpy) evaluation is provided for the trace-driven
benchmarks; it reduces mod ``p`` with ``object`` dtype only when values can
overflow 64 bits, and otherwise stays in fast integer ops.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: The Mersenne prime 2**61 - 1 used as the field size for all polynomial
#: hash families.  Keys must be < p, which any 61-bit key encoding satisfies.
MERSENNE_PRIME_61 = (1 << 61) - 1

_P = MERSENNE_PRIME_61


def _mod_mersenne(x: int) -> int:
    """Reduce ``x`` modulo ``2**61 - 1`` using shift/add (no division).

    Valid for ``0 <= x < 2**122``, which covers a product of two 61-bit
    residues plus a 61-bit addend.  Two folds are required: after the
    first, the value can still be as large as ``2**62``.
    """
    x = (x & _P) + (x >> 61)
    x = (x & _P) + (x >> 61)
    if x >= _P:
        x -= _P
    return x


class PolynomialHash:
    """A single k-wise independent hash function ``h : [p] -> [p]``.

    Parameters
    ----------
    k:
        Independence level; the polynomial has degree ``k - 1``.
    seed:
        Seeds the coefficient draw; equal seeds give equal functions.
    rng:
        Alternative to ``seed``: an existing :class:`random.Random` to draw
        coefficients from (used when building many functions from one seed).
    """

    __slots__ = ("k", "coefficients")

    def __init__(self, k: int = 2, seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        if k < 1:
            raise ConfigurationError(f"independence k must be >= 1, got {k}")
        if rng is None:
            rng = random.Random(seed)
        coeffs = [rng.randrange(_P) for _ in range(k)]
        # Leading coefficient must be non-zero for full degree.
        while k > 1 and coeffs[-1] == 0:
            coeffs[-1] = rng.randrange(_P)
        self.k = k
        self.coefficients: Sequence[int] = tuple(coeffs)

    def __call__(self, x: int) -> int:
        """Evaluate the polynomial at ``x`` (Horner's rule, exact)."""
        acc = 0
        for a in reversed(self.coefficients):
            acc = _mod_mersenne(acc * x + a)
        return acc

    def hash_many(self, xs: Iterable[int]) -> List[int]:
        """Evaluate on every element of ``xs`` (convenience wrapper)."""
        return [self(x) for x in xs]

    def hash_array(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised evaluation over a ``uint64``/``int64`` numpy array.

        Uses Python-object arithmetic per chunk boundary only when needed;
        implemented with ``object`` dtype to stay exact (the 61-bit products
        overflow uint64).  This is the slow-but-correct path; per-sketch hot
        loops use :class:`TabulationHash` instead.
        """
        obj = xs.astype(object)
        acc = np.zeros(len(obj), dtype=object)
        for a in reversed(self.coefficients):
            acc = (acc * obj + a) % _P
        return acc.astype(np.uint64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PolynomialHash(k={self.k})"


class PairwiseHash(PolynomialHash):
    """The ``k = 2`` (pairwise independent) polynomial hash, ``ax + b mod p``."""

    def __init__(self, seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(k=2, seed=seed, rng=rng)


class BucketHash:
    """Hash keys onto a bucket index in ``[0, width)``.

    Composes a :class:`PolynomialHash` with a modular range reduction.  The
    tiny non-uniformity of ``mod width`` (at most ``width / p``) is
    negligible for any realistic width.
    """

    __slots__ = ("width", "_h")

    def __init__(self, width: int, k: int = 2, seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        self.width = width
        self._h = PolynomialHash(k=k, seed=seed, rng=rng)

    def __call__(self, x: int) -> int:
        return self._h(x) % self.width

    def hash_array(self, xs: np.ndarray) -> np.ndarray:
        return (self._h.hash_array(xs) % np.uint64(self.width)).astype(np.int64)


class SignHash:
    """Pairwise-independent sign hash ``s : [p] -> {-1, +1}``.

    This is Count Sketch's ``s_i`` function; pairwise independence is what
    makes ``E[s(x) s(y)] = 0`` for ``x != y`` and hence the point-query
    estimator unbiased.
    """

    __slots__ = ("_h",)

    def __init__(self, seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        self._h = PairwiseHash(seed=seed, rng=rng)

    def __call__(self, x: int) -> int:
        return 1 if (self._h(x) & 1) else -1

    def hash_array(self, xs: np.ndarray) -> np.ndarray:
        bits = (self._h.hash_array(xs) & np.uint64(1)).astype(np.int64)
        return 2 * bits - 1
