"""UnivMon: a "RISC" approach to software-defined monitoring.

Reproduction of Liu, Vorsanger, Braverman & Sekar, *Enabling a "RISC"
Approach for Software-Defined Monitoring using Universal Streaming*
(HotNets 2015).

One generic data-plane primitive — the **universal sketch** — supports a
broad spectrum of monitoring tasks through offline estimation functions:

>>> from repro import UniversalSketch
>>> sketch = UniversalSketch(levels=8, rows=5, width=1024, seed=1)
>>> for key in [1, 1, 1, 2, 3]:
...     sketch.update(key)
>>> sketch.heavy_hitters(0.5)       # G-core, g(x) = x
[(1, 3.0)]
>>> round(sketch.cardinality())     # G-sum, g(x) = x**0
3

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro._version import __version__
from repro.errors import (
    ConfigurationError,
    IncompatibleSketchError,
    NotSketchableError,
    ReproError,
    TopologyError,
    TraceFormatError,
)
from repro.core import (
    GFunction,
    SlidingWindowUniversalSketch,
    UniversalSketch,
    estimate_cardinality,
    estimate_entropy,
    estimate_gsum,
    g_core,
    is_stream_polylog,
)
from repro.controlplane import (
    CardinalityApp,
    ChangeDetectionApp,
    Controller,
    DDoSApp,
    EntropyApp,
    HeavyHitterApp,
    MomentsApp,
    MultidimensionalMonitor,
)
from repro.dataplane import (
    FiveTuple,
    MonitoredSwitch,
    Packet,
    SyntheticTraceConfig,
    Trace,
    generate_trace,
)
from repro.network import DistributedMonitor, NetworkTopology, ZoomMonitor

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "IncompatibleSketchError",
    "NotSketchableError",
    "TraceFormatError",
    "TopologyError",
    # core
    "UniversalSketch",
    "SlidingWindowUniversalSketch",
    "GFunction",
    "is_stream_polylog",
    "estimate_gsum",
    "estimate_cardinality",
    "estimate_entropy",
    "g_core",
    # control plane
    "Controller",
    "HeavyHitterApp",
    "DDoSApp",
    "ChangeDetectionApp",
    "EntropyApp",
    "CardinalityApp",
    "MomentsApp",
    "MultidimensionalMonitor",
    # data plane
    "Trace",
    "SyntheticTraceConfig",
    "generate_trace",
    "Packet",
    "FiveTuple",
    "MonitoredSwitch",
    # network
    "NetworkTopology",
    "DistributedMonitor",
    "ZoomMonitor",
]
